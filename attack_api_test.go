package aria

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// Attack tests through the public API and the Corrupter fault-injection
// interface: the library-level counterpart of the raw-memory attack tests
// in internal/core.

func corruptibleSchemes() []Scheme {
	return []Scheme{AriaHash, AriaTree, NoCacheHash, ShieldStoreScheme}
}

func loadStore(t *testing.T, scheme Scheme, n int) Store {
	t.Helper()
	st, err := Open(Options{
		Scheme:       scheme,
		EPCBytes:     16 << 20,
		ExpectedKeys: n,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Put([]byte(fmt.Sprintf("atk-%06d", i)), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestCorrupterExposed(t *testing.T) {
	for _, s := range corruptibleSchemes() {
		st := loadStore(t, s, 100)
		cor, ok := st.(Corrupter)
		if !ok {
			t.Fatalf("%v does not implement Corrupter", s)
		}
		if cor.UntrustedSize() == 0 {
			t.Errorf("%v reports empty untrusted arena", s)
		}
		if cor.FlipUntrustedByte(-1, 1) || cor.FlipUntrustedByte(1<<40, 1) {
			t.Errorf("%v accepted out-of-range corruption", s)
		}
	}
}

func TestRandomCorruptionCaughtByAudit(t *testing.T) {
	for _, s := range corruptibleSchemes() {
		t.Run(s.String(), func(t *testing.T) {
			st := loadStore(t, s, 3000)
			if err := st.VerifyIntegrity(); err != nil {
				t.Fatalf("clean audit failed: %v", err)
			}
			cor := st.(Corrupter)
			rng := rand.New(rand.NewSource(3))
			// Flood enough random flips that live state is hit with
			// overwhelming probability.
			for i := 0; i < 5000; i++ {
				cor.FlipUntrustedByte(rng.Intn(cor.UntrustedSize()), 0xA5)
			}
			if err := st.VerifyIntegrity(); !errors.Is(err, ErrIntegrity) {
				t.Errorf("audit after 5000 flips: %v, want ErrIntegrity", err)
			}
		})
	}
}

func TestWholesaleReplayCaught(t *testing.T) {
	for _, s := range []Scheme{AriaHash, AriaTree, ShieldStoreScheme} {
		t.Run(s.String(), func(t *testing.T) {
			st := loadStore(t, s, 500)
			cor := st.(Corrupter)
			snap := cor.SnapshotUntrusted()
			// Honest overwrites advance the counters.
			for i := 0; i < 500; i++ {
				if err := st.Put([]byte(fmt.Sprintf("atk-%06d", i)), []byte("fresh!")); err != nil {
					t.Fatal(err)
				}
			}
			cor.RestoreUntrusted(snap)
			// Either a targeted read or the audit must flag the replay.
			_, gerr := st.Get([]byte("atk-000000"))
			aerr := st.VerifyIntegrity()
			if !errors.Is(gerr, ErrIntegrity) && !errors.Is(aerr, ErrIntegrity) {
				t.Errorf("replay undetected: get=%v audit=%v", gerr, aerr)
			}
		})
	}
}

func TestBaselineOutOfAttackSurface(t *testing.T) {
	// Baseline stores keep everything in the EPC: there is no untrusted
	// state to corrupt. The semantics layer passes the Corrupter surface
	// through uniformly, so the contract is an empty arena — zero bytes,
	// and no flip can ever land.
	st := loadStore(t, BaselineHash, 10)
	cor, ok := st.(Corrupter)
	if !ok {
		t.Fatal("store does not expose the Corrupter surface")
	}
	if n := cor.UntrustedSize(); n != 0 {
		t.Errorf("baseline store exposes %d untrusted bytes, want 0", n)
	}
	if cor.FlipUntrustedByte(0, 0x01) {
		t.Error("flip landed on a store with no untrusted memory")
	}
}

func TestHonestOperationAfterFailedAttack(t *testing.T) {
	// Detection must not corrupt the trusted state: after an attack is
	// detected on one key, other (untampered) keys remain readable.
	st := loadStore(t, AriaHash, 1000)
	cor := st.(Corrupter)
	// Find a flip that breaks exactly one key.
	var victim []byte
	rng := rand.New(rand.NewSource(9))
	for attempt := 0; attempt < 200 && victim == nil; attempt++ {
		off := rng.Intn(cor.UntrustedSize())
		cor.FlipUntrustedByte(off, 0x01)
		broken := 0
		var b []byte
		for i := 0; i < 1000; i += 13 {
			k := []byte(fmt.Sprintf("atk-%06d", i))
			if _, err := st.Get(k); errors.Is(err, ErrIntegrity) {
				broken++
				b = k
			}
		}
		if broken == 1 {
			victim = b
			break
		}
		cor.FlipUntrustedByte(off, 0x01) // undo and try elsewhere
	}
	if victim == nil {
		t.Skip("no single-key corruption found at this seed")
	}
	healthy := 0
	for i := 1; i < 1000; i += 13 {
		k := []byte(fmt.Sprintf("atk-%06d", i))
		if string(k) == string(victim) {
			continue
		}
		if _, err := st.Get(k); err == nil {
			healthy++
		}
	}
	if healthy == 0 {
		t.Error("detection of one attack poisoned unrelated keys")
	}
}
