package aria

// The shard manifest. A sharded durable store splits DataDir into one
// WAL+snapshot lineage per shard (shard-<i>/), but the hash router that
// assigns keys to shards lives only in Options.Shards — nothing about
// the partitioning is derivable from the lineages themselves. Reopening
// an existing DataDir with a different shard count would recover every
// lineage into its old index while the router maps keys differently:
// committed keys silently become unreachable instead of failing loudly.
//
// openSharded therefore publishes a small sealed manifest
// (manifest.seal) in DataDir recording the shard count, and every
// subsequent Open — sharded or not — must agree with it. The manifest
// is sealed like any other durable record (internal/seal: AES-CTR +
// CMAC under seed-derived keys, its own salt and chain label), so the
// host cannot forge a different count; and because a directory that
// holds lineage state without a manifest can only mean the manifest was
// deleted, that case is treated as tampering, not as a fresh store.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/ariakv/aria/internal/seal"
)

const (
	// manifestName is the manifest's file name inside DataDir.
	manifestName = "manifest.seal"
	// saltManifest is the manifest's keystream domain ("ariaMANF"),
	// distinct from the WAL and snapshot domains in package wal.
	saltManifest = 0x617269614d414e46
	// manifestLabel seeds the manifest's (single-record) MAC chain.
	manifestLabel = "aria-shard-manifest"
	// manifestMagic opens the manifest payload.
	manifestMagic = "ariashard1"
)

// readShardManifest returns the shard count recorded in dir's manifest;
// ok is false when no manifest file exists. A manifest that fails
// verification returns an error wrapping seal.ErrTampered.
func readShardManifest(dir string, s *seal.Sealer) (shards int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("aria: read shard manifest: %w", err)
	}
	seq, payload, _, err := s.Open(saltManifest, s.ChainInit(manifestLabel, 0), data)
	if err != nil || seq != 0 {
		return 0, false, fmt.Errorf("aria: shard manifest failed verification: %w", seal.ErrTampered)
	}
	if len(payload) != len(manifestMagic)+4 || !strings.HasPrefix(string(payload), manifestMagic) {
		return 0, false, fmt.Errorf("aria: shard manifest malformed: %w", seal.ErrTampered)
	}
	n := int(binary.LittleEndian.Uint32(payload[len(manifestMagic):]))
	if n <= 0 {
		return 0, false, fmt.Errorf("aria: shard manifest count %d: %w", n, seal.ErrTampered)
	}
	return n, true, nil
}

// writeShardManifest atomically publishes dir's manifest (write-temp +
// rename + directory fsync, like a snapshot).
func writeShardManifest(dir string, s *seal.Sealer, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("aria: create data dir: %w", err)
	}
	payload := make([]byte, len(manifestMagic)+4)
	copy(payload, manifestMagic)
	binary.LittleEndian.PutUint32(payload[len(manifestMagic):], uint32(shards))
	rec, _ := s.Seal(0, saltManifest, s.ChainInit(manifestLabel, 0), payload)
	final := filepath.Join(dir, manifestName)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, rec, 0o644); err != nil {
		return fmt.Errorf("aria: write shard manifest: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("aria: publish shard manifest: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best-effort, as for snapshot renames
		d.Close()
	}
	return nil
}

// durableStateKind classifies what lineage state dir already holds:
// "" (nothing), "sharded" (shard-<i> subdirectories), or "single"
// (WAL segments or snapshots at the top level).
func durableStateKind(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("aria: read data dir: %w", err)
	}
	kind := ""
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			return "sharded", nil
		case strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-"),
			strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "segset-"):
			kind = "single"
		}
	}
	return kind, nil
}

// checkShardManifest reconciles Options.Shards with what DataDir
// records, creating the manifest when a sharded store first claims a
// fresh directory. shards is the effective count (1 for an unsharded
// store). It returns a configuration error on a count mismatch and an
// ErrIntegrity-wrapped error when the manifest is tampered or has been
// deleted out from under existing lineage state.
func checkShardManifest(dir string, seed uint64, shards int) error {
	s := seal.New(seed)
	n, ok, err := readShardManifest(dir, s)
	if err != nil {
		if errors.Is(err, seal.ErrTampered) {
			return fmt.Errorf("%w: %w", ErrIntegrity, err)
		}
		return err
	}
	if ok {
		if n != shards {
			return fmt.Errorf("aria: DataDir %s holds a %d-shard store but Options.Shards requests %d; reopen with Shards=%d (re-partitioning needs an explicit migration)", dir, n, shards, n)
		}
		return nil
	}
	kind, err := durableStateKind(dir)
	if err != nil {
		return err
	}
	switch {
	case shards > 1 && kind != "":
		// A sharded open over existing lineage state without a manifest:
		// either the manifest was removed (tampering — a crash cannot
		// delete a published file) or the directory belongs to an
		// unsharded store.
		return fmt.Errorf("%w: aria: DataDir %s holds existing %s state but no shard manifest", ErrIntegrity, dir, kind)
	case shards == 1 && kind == "sharded":
		// Unsharded open over shard subdirectories: without this check
		// the store would start an empty top-level lineage and silently
		// hide every committed key.
		return fmt.Errorf("%w: aria: DataDir %s holds sharded state but no shard manifest", ErrIntegrity, dir)
	case shards > 1:
		return writeShardManifest(dir, s, shards)
	}
	// An unsharded store over a fresh or single-lineage directory keeps
	// the historical manifest-free layout.
	return nil
}
