package aria

// The crash matrix: the durability subsystem's core property, tested
// exhaustively. A scripted workload is written through a durable store
// with FsyncAlways (every record individually committed), then the
// resulting WAL is attacked one byte at a time:
//
//   - truncated to EVERY length 0..len(file): reopening must recover
//     exactly the committed prefix — the state after the last record
//     that fits entirely in the truncated file — because a crash can
//     only shorten an append-only log;
//   - EVERY byte flipped in place: under FailStop the reopen must fail
//     with ErrIntegrity (the log is evidence); under Quarantine it must
//     come up degraded with exactly the records before the flipped one.
//
// The same property is asserted per shard on a sharded store, where
// each shard keeps an independent WAL lineage.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// crashOpts keeps the store as small as the schemes allow, because the
// matrix reopens it hundreds of times.
func crashOpts(dir string) Options {
	opts := durableOpts(dir)
	opts.EPCBytes = 16 << 20
	opts.ExpectedKeys = 512
	opts.Fsync = FsyncAlways
	return opts
}

// crashOp is one scripted mutation; del selects Delete over Put.
type crashOp struct {
	key, value string
	del        bool
}

// crashScript is the workload the matrix replays: inserts, an
// overwrite, and a delete, so recovered state is order-sensitive.
var crashScript = []crashOp{
	{key: "alpha", value: "1"},
	{key: "bravo", value: "2"},
	{key: "charlie", value: "3"},
	{key: "alpha", value: "1-rewritten"},
	{key: "delta", value: "4"},
	{key: "bravo", del: true},
	{key: "echo", value: "5"},
	{key: "foxtrot", value: "6"},
}

// apply runs ops[0:k] into a fresh map: the expected state after a
// committed prefix of k records.
func apply(ops []crashOp, k int) map[string]string {
	want := make(map[string]string)
	for _, op := range ops[:k] {
		if op.del {
			delete(want, op.key)
		} else {
			want[op.key] = op.value
		}
	}
	return want
}

// buildCrashWAL writes the script through a durable store one op per
// record and returns the segment file's bytes plus ends[k] = file
// length once op k is durable (ends[0] = 0). FsyncAlways means each op
// is fully committed before the next, so ends[] are exactly the legal
// crash points.
func buildCrashWAL(t *testing.T, dir string) (data []byte, ends []int64, segName string) {
	t.Helper()
	st := mustOpen(t, crashOpts(dir))
	seg := singleSegment(t, dir)
	segName = filepath.Base(seg)
	ends = append(ends, 0)
	for _, op := range crashScript {
		var err error
		if op.del {
			err = st.Delete([]byte(op.key))
		} else {
			err = st.Put([]byte(op.key), []byte(op.value))
		}
		if err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	mustClose(t, st)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != ends[len(ends)-1] {
		t.Fatalf("segment is %d bytes, expected %d after the last op", len(data), ends[len(ends)-1])
	}
	return data, ends, segName
}

// singleSegment returns the path of dir's only WAL segment.
func singleSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("found %d WAL segments in %s, want exactly 1", len(segs), dir)
	}
	return segs[0]
}

// committedPrefix maps a file length to the number of fully-contained
// records: the largest k with ends[k] <= size.
func committedPrefix(ends []int64, size int64) int {
	k := 0
	for i, e := range ends {
		if e <= size {
			k = i
		}
	}
	return k
}

// corruptedRecord maps a byte offset to the 1-based record holding it.
func corruptedRecord(ends []int64, off int64) int {
	for k := 1; k < len(ends); k++ {
		if off < ends[k] {
			return k
		}
	}
	return len(ends) - 1
}

// writeCrashCopy materialises one matrix cell: the original log bytes
// with the given mutation, in a fresh directory under the original
// segment file name (the name encodes the first sequence number).
func writeCrashCopy(t *testing.T, segName string, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCrashMatrixTruncation(t *testing.T) {
	data, ends, segName := buildCrashWAL(t, t.TempDir())
	for size := int64(0); size <= int64(len(data)); size++ {
		k := committedPrefix(ends, size)
		dir := writeCrashCopy(t, segName, data[:size])
		st, err := Open(crashOpts(dir))
		if err != nil {
			t.Fatalf("truncate to %d bytes: reopen failed: %v (a cut is a crash, never tampering)", size, err)
		}
		if got := st.Stats().RecoveredRecords; got != uint64(k) {
			t.Fatalf("truncate to %d bytes: recovered %d records, want committed prefix %d", size, got, k)
		}
		want := apply(crashScript, k)
		if got := dump(t, st); !mapsEqual(got, want) {
			t.Fatalf("truncate to %d bytes: state %v, want committed prefix state %v", size, got, want)
		}
		mustClose(t, st)
	}
}

func TestCrashMatrixByteFlipFailStop(t *testing.T) {
	data, _, segName := buildCrashWAL(t, t.TempDir())
	for off := int64(0); off < int64(len(data)); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		dir := writeCrashCopy(t, segName, mut)
		opts := crashOpts(dir)
		opts.IntegrityPolicy = FailStop
		st, err := Open(opts)
		if err == nil {
			mustClose(t, st)
			t.Fatalf("flip at offset %d: FailStop open succeeded on a tampered log", off)
		}
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flip at offset %d: error %v does not wrap ErrIntegrity", off, err)
		}
	}
}

func TestCrashMatrixByteFlipQuarantine(t *testing.T) {
	data, ends, segName := buildCrashWAL(t, t.TempDir())
	for off := int64(0); off < int64(len(data)); off++ {
		bad := corruptedRecord(ends, off)
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		dir := writeCrashCopy(t, segName, mut)
		opts := crashOpts(dir)
		opts.IntegrityPolicy = Quarantine
		st, err := Open(opts)
		if err != nil {
			t.Fatalf("flip at offset %d: Quarantine open failed: %v", off, err)
		}
		stats := st.Stats()
		if stats.Health() != HealthDegraded {
			t.Fatalf("flip at offset %d: health %v, want degraded", off, stats.Health())
		}
		if got := stats.RecoveredRecords; got != uint64(bad-1) {
			t.Fatalf("flip at offset %d (record %d): recovered %d records, want %d", off, bad, got, bad-1)
		}
		want := apply(crashScript, bad-1)
		if got := dump(t, st); !mapsEqual(got, want) {
			t.Fatalf("flip at offset %d: state %v, want salvaged prefix %v", off, got, want)
		}
		mustClose(t, st)
	}
}

// txnCrashStep is one scripted mutation for the transactional matrix:
// plain puts and deletes, TTL-bearing puts, a CAS, and multi-key
// transactions that must commit through ONE WAL record each.
type txnCrashStep struct {
	kind  byte // 'p' put, 'd' delete, 't' putttl, 'c' cas, 'x' txn
	key   string
	value string
	ttl   time.Duration
	ops   []txnCrashWrite // sub-writes of an 'x' step
}

// txnCrashWrite is one write inside a scripted transaction.
type txnCrashWrite struct {
	key, value string
	ttl        time.Duration
	del        bool
}

// txnCrashScript interleaves every durable record shape. All TTLs are
// far future against the fixed clock, so sealed deadlines round-trip
// without expiring mid-matrix.
var txnCrashScript = []txnCrashStep{
	{kind: 'p', key: "alpha", value: "1"},
	{kind: 't', key: "bravo", value: "2", ttl: time.Hour},
	{kind: 'x', ops: []txnCrashWrite{
		{key: "golf", value: "7"},
		{key: "alpha", value: "1-txn"},
		{key: "hotel", value: "8", ttl: 2 * time.Hour},
		{key: "bravo", del: true},
	}},
	{kind: 'c', key: "alpha", value: "1-cas"},
	{kind: 'x', ops: []txnCrashWrite{
		{key: "golf", del: true},
		{key: "india", value: "9"},
	}},
	{kind: 't', key: "alpha", value: "1-ttl", ttl: 3 * time.Hour},
	{kind: 'd', key: "india"},
}

// applyTxnScript computes the expected state after the first k steps:
// a transaction's sub-writes land together or not at all.
func applyTxnScript(k int) map[string]string {
	want := make(map[string]string)
	for _, step := range txnCrashScript[:k] {
		switch step.kind {
		case 'd':
			delete(want, step.key)
		case 'x':
			for _, w := range step.ops {
				if w.del {
					delete(want, w.key)
				} else {
					want[w.key] = w.value
				}
			}
		default:
			want[step.key] = step.value
		}
	}
	return want
}

// txnScriptKeys lists every key the script touches, once.
func txnScriptKeys() []string {
	seen := make(map[string]bool)
	var keys []string
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, step := range txnCrashScript {
		if step.kind == 'x' {
			for _, w := range step.ops {
				add(w.key)
			}
		} else {
			add(step.key)
		}
	}
	return keys
}

// buildTxnCrashWAL writes the transactional script through a durable
// store under a fixed clock, one WAL record per step (a whole txn is one
// group-commit record), and returns the segment bytes plus the legal
// crash points, as buildCrashWAL does.
func buildTxnCrashWAL(t *testing.T, dir string, now func() time.Time) (data []byte, ends []int64, segName string) {
	t.Helper()
	opts := crashOpts(dir)
	opts.Now = now
	st := mustOpen(t, opts)
	seg := singleSegment(t, dir)
	segName = filepath.Base(seg)
	ends = append(ends, 0)
	for i, step := range txnCrashScript {
		var err error
		switch step.kind {
		case 'p':
			err = st.Put([]byte(step.key), []byte(step.value))
		case 'd':
			err = st.Delete([]byte(step.key))
		case 't':
			err = st.PutTTL([]byte(step.key), []byte(step.value), step.ttl)
		case 'c':
			var ver uint64
			if _, ver, err = st.GetV([]byte(step.key)); err == nil {
				err = st.CompareAndSwap([]byte(step.key), []byte(step.value), ver)
			}
		case 'x':
			ops := make([]TxnOp, len(step.ops))
			for j, w := range step.ops {
				ops[j] = TxnOp{Key: []byte(w.key), Value: []byte(w.value), TTL: w.ttl, Delete: w.del}
			}
			err = st.TxnCommit(ops)
		}
		if err != nil {
			t.Fatalf("step %d (%c): %v", i, step.kind, err)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if sz := fi.Size(); sz <= ends[len(ends)-1] {
			t.Fatalf("step %d (%c) appended no WAL record", i, step.kind)
		} else {
			ends = append(ends, sz)
		}
	}
	mustClose(t, st)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	return data, ends, segName
}

// checkTxnState verifies the recovered store against want through Get,
// which honors lazy TTL expiry (Scan may surface unreaped entries).
func checkTxnState(t *testing.T, st Store, want map[string]string, context string) {
	t.Helper()
	for _, key := range txnScriptKeys() {
		v, err := st.Get([]byte(key))
		wantV, present := want[key]
		switch {
		case present && err != nil:
			t.Fatalf("%s: Get(%s): %v, want %q", context, key, err, wantV)
		case present && string(v) != wantV:
			t.Fatalf("%s: Get(%s) = %q, want %q", context, key, v, wantV)
		case !present && !errors.Is(err, ErrNotFound):
			t.Fatalf("%s: Get(%s) = %q, %v, want ErrNotFound", context, key, v, err)
		}
	}
}

// TestCrashMatrixTxnTruncation cuts a WAL holding txn group-commit and
// TTL-bearing records to every length: each reopen must recover exactly
// the committed prefix of whole steps — in particular, a cut anywhere
// inside a transaction's record makes ALL of its writes vanish, never
// some of them.
func TestCrashMatrixTxnTruncation(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return fixed }
	data, ends, segName := buildTxnCrashWAL(t, t.TempDir(), now)
	for size := int64(0); size <= int64(len(data)); size++ {
		k := committedPrefix(ends, size)
		dir := writeCrashCopy(t, segName, data[:size])
		opts := crashOpts(dir)
		opts.Now = now
		st, err := Open(opts)
		if err != nil {
			t.Fatalf("truncate to %d bytes: reopen failed: %v", size, err)
		}
		if got := st.Stats().RecoveredRecords; got != uint64(k) {
			t.Fatalf("truncate to %d bytes: recovered %d records, want committed prefix %d", size, got, k)
		}
		checkTxnState(t, st, applyTxnScript(k),
			fmt.Sprintf("truncate to %d bytes (prefix %d)", size, k))
		mustClose(t, st)
	}
}

// TestCrashMatrixTxnByteFlipFailStop flips every byte of the
// transactional WAL: the new record shapes must be just as much
// evidence as plain puts — FailStop refuses the whole log.
func TestCrashMatrixTxnByteFlipFailStop(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return fixed }
	data, _, segName := buildTxnCrashWAL(t, t.TempDir(), now)
	for off := int64(0); off < int64(len(data)); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		dir := writeCrashCopy(t, segName, mut)
		opts := crashOpts(dir)
		opts.Now = now
		opts.IntegrityPolicy = FailStop
		st, err := Open(opts)
		if err == nil {
			mustClose(t, st)
			t.Fatalf("flip at offset %d: FailStop open succeeded on a tampered log", off)
		}
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flip at offset %d: error %v does not wrap ErrIntegrity", off, err)
		}
	}
}

// TestCrashMatrixTTLRecoveryClock reopens a TTL-bearing WAL under a
// clock advanced past some deadlines: sealed expiries are absolute, so
// recovery itself decides freshness — entries past their deadline read
// as absent, entries inside it serve normally.
func TestCrashMatrixTTLRecoveryClock(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	dir := t.TempDir()
	data, _, segName := buildTxnCrashWAL(t, dir, func() time.Time { return fixed })
	copyDir := writeCrashCopy(t, segName, data)
	// Reopen 150 minutes later: bravo (1h, deleted by txn anyway) and
	// hotel (2h) are past deadline; alpha (3h) still serves.
	opts := crashOpts(copyDir)
	opts.Now = func() time.Time { return fixed.Add(150 * time.Minute) }
	st := mustOpen(t, opts)
	if v, err := st.Get([]byte("alpha")); err != nil || string(v) != "1-ttl" {
		t.Fatalf("alpha inside its 3h deadline: %q, %v", v, err)
	}
	if _, err := st.Get([]byte("hotel")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("hotel past its 2h deadline: %v, want ErrNotFound", err)
	}
	expired := st.Stats().TTLExpired
	if expired == 0 {
		t.Fatalf("lazy expiry served a dead key without counting it")
	}
	mustClose(t, st)
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// coldCrashSetup builds a cold-tier lineage to attack: a compressible
// baseline corpus checkpointed into a segment set, then crashScript
// written through the post-rotation WAL with FsyncAlways, recording the
// legal crash points of the live WAL segment. It returns the intact
// directory's file contents, the tail WAL's name, its bytes, and the
// crash points (ends[0] = the tail's size right after the checkpoint).
func coldCrashSetup(t *testing.T, baseline int) (files map[string][]byte, tailWAL string, tail []byte, ends []int64) {
	t.Helper()
	dir := t.TempDir()
	opts := crashOpts(dir)
	opts.ColdCompress = true
	st := mustOpen(t, opts)
	for i := 0; i < baseline; i++ {
		if err := st.Put(coldKey(i), coldValueAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.(Durable).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint rotated the WAL: the script lands in the newest
	// segment, whose name sorts last.
	newestWAL := func() string {
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no WAL segments after checkpoint: %v", err)
		}
		newest := segs[0]
		for _, s := range segs[1:] {
			if filepath.Base(s) > filepath.Base(newest) {
				newest = s
			}
		}
		return newest
	}
	sizeOf := func(path string) int64 {
		fi, err := os.Stat(path)
		if os.IsNotExist(err) {
			return 0
		}
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	first := newestWAL()
	ends = append(ends, sizeOf(first))
	for _, op := range crashScript {
		var err error
		if op.del {
			err = st.Delete([]byte(op.key))
		} else {
			err = st.Put([]byte(op.key), []byte(op.value))
		}
		if err != nil {
			t.Fatal(err)
		}
		cur := newestWAL()
		if cur != first {
			t.Fatalf("WAL rotated mid-script: %s -> %s", first, cur)
		}
		ends = append(ends, sizeOf(first))
	}
	mustClose(t, st)
	files = make(map[string][]byte)
	for _, name := range mustReadDir(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
	}
	tailWAL = filepath.Base(first)
	tail = files[tailWAL]
	if int64(len(tail)) != ends[len(ends)-1] {
		t.Fatalf("tail WAL is %d bytes, expected %d after the last op", len(tail), ends[len(ends)-1])
	}
	return files, tailWAL, tail, ends
}

// writeColdCrashCopy materialises one cold matrix cell: every intact
// file (segments, set manifests, older WAL segments) plus one file
// replaced by its mutated bytes. A nil mutation deletes the file.
func writeColdCrashCopy(t *testing.T, files map[string][]byte, victim string, mut []byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, b := range files {
		if name == victim {
			b = mut
		}
		if b == nil {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// coldBaselineState is the expected recovered state of the checkpointed
// corpus plus a committed crashScript prefix of k ops.
func coldBaselineState(baseline, k int) map[string]string {
	want := make(map[string]string)
	for i := 0; i < baseline; i++ {
		want[string(coldKey(i))] = string(coldValueAt(i))
	}
	for key, v := range apply(crashScript, k) {
		want[key] = v
	}
	return want
}

// TestCrashMatrixColdTruncation cuts the WAL above a segment-set
// checkpoint to every length: each reopen must recover the full
// checkpointed corpus from the compressed segments plus exactly the
// committed prefix of tail records.
func TestCrashMatrixColdTruncation(t *testing.T) {
	const baseline = 40
	files, tailWAL, tail, ends := coldCrashSetup(t, baseline)
	for size := ends[0]; size <= int64(len(tail)); size++ {
		k := committedPrefix(ends, size)
		dir := writeColdCrashCopy(t, files, tailWAL, tail[:size])
		opts := crashOpts(dir)
		opts.ColdCompress = true
		st, err := Open(opts)
		if err != nil {
			t.Fatalf("tail cut to %d bytes: reopen failed: %v (a cut is a crash, never tampering)", size, err)
		}
		want := coldBaselineState(baseline, k)
		if got := dump(t, st); !mapsEqual(got, want) {
			t.Fatalf("tail cut to %d bytes: state %v, want checkpoint + prefix %d", size, got, k)
		}
		mustClose(t, st)
	}
}

// TestCrashMatrixColdSegmentTamper attacks the sealed segment files
// themselves: every byte of every seg-/segset- file flipped in place,
// and every truncation of each (segments carry a trailer proving
// completeness, so unlike a WAL a cut segment IS tampering). Under
// FailStop each reopen must refuse with ErrIntegrity.
func TestCrashMatrixColdSegmentTamper(t *testing.T) {
	files, _, _, _ := coldCrashSetup(t, 40)
	for name, data := range files {
		if !strings.HasPrefix(name, "seg-") && !strings.HasPrefix(name, "segset-") {
			continue
		}
		for off := int64(0); off < int64(len(data)); off++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x40
			dir := writeColdCrashCopy(t, files, name, mut)
			opts := crashOpts(dir)
			opts.ColdCompress = true
			opts.IntegrityPolicy = FailStop
			st, err := Open(opts)
			if err == nil {
				mustClose(t, st)
				t.Fatalf("%s flip at %d: FailStop open succeeded on a tampered segment", name, off)
			}
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("%s flip at %d: %v does not wrap ErrIntegrity", name, off, err)
			}
		}
		for _, size := range []int64{0, 1, int64(len(data)) / 2, int64(len(data)) - 1} {
			dir := writeColdCrashCopy(t, files, name, data[:size])
			opts := crashOpts(dir)
			opts.ColdCompress = true
			opts.IntegrityPolicy = FailStop
			st, err := Open(opts)
			if err == nil {
				mustClose(t, st)
				t.Fatalf("%s cut to %d bytes: FailStop open succeeded on an incomplete segment", name, size)
			}
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("%s cut to %d bytes: %v does not wrap ErrIntegrity", name, size, err)
			}
		}
	}
}

// TestCrashMatrixColdQuarantineFallback corrupts the newest generation
// of a two-set lineage: under Quarantine recovery must fall back to the
// previous set and reach the SAME final state, because the WAL above the
// older set's covered boundary is retained until the generation after
// next — the segment-set analogue of the snapshot fallback guarantee.
func TestCrashMatrixColdQuarantineFallback(t *testing.T) {
	const baseline = 40
	dir := t.TempDir()
	opts := crashOpts(dir)
	opts.ColdCompress = true
	st := mustOpen(t, opts)
	for i := 0; i < baseline; i++ {
		if err := st.Put(coldKey(i), coldValueAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint(t, st) // generation A
	for i := 0; i < 10; i++ {
		if err := st.Put(coldKey(i), []byte(fmt.Sprintf("gen-b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(coldKey(39)); err != nil {
		t.Fatal(err)
	}
	checkpoint(t, st) // generation B
	if err := st.Put([]byte("tail"), []byte("tail-v")); err != nil {
		t.Fatal(err)
	}
	mustClose(t, st)

	want := make(map[string]string)
	for i := 0; i < baseline-1; i++ {
		want[string(coldKey(i))] = string(coldValueAt(i))
	}
	for i := 0; i < 10; i++ {
		want[string(coldKey(i))] = fmt.Sprintf("gen-b-%d", i)
	}
	want["tail"] = "tail-v"

	files := make(map[string][]byte)
	var segs, sets []string
	for _, name := range mustReadDir(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
		switch {
		case strings.HasPrefix(name, "segset-"):
			sets = append(sets, name)
		case strings.HasPrefix(name, "seg-"):
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	sort.Strings(sets)
	if len(sets) < 2 {
		t.Fatalf("setup left %d set manifests, need 2 generations", len(sets))
	}
	// Attack generation B three ways: flip its manifest, flip its newest
	// member segment, and delete the member outright.
	newestSet, newestSeg := sets[len(sets)-1], segs[len(segs)-1]
	flip := func(b []byte) []byte {
		mut := append([]byte(nil), b...)
		mut[len(mut)/2] ^= 0x40
		return mut
	}
	for _, attack := range []struct {
		name   string
		victim string
		mut    []byte
	}{
		{"flip-manifest", newestSet, flip(files[newestSet])},
		{"flip-member", newestSeg, flip(files[newestSeg])},
		{"drop-member", newestSeg, nil},
	} {
		t.Run(attack.name, func(t *testing.T) {
			cdir := writeColdCrashCopy(t, files, attack.victim, attack.mut)
			o := crashOpts(cdir)
			o.ColdCompress = true
			o.IntegrityPolicy = Quarantine
			st, err := Open(o)
			if err != nil {
				t.Fatalf("Quarantine open failed instead of falling back: %v", err)
			}
			defer mustClose(t, st)
			if st.Stats().Health() != HealthDegraded {
				t.Errorf("health %v after salvaging from the previous set, want degraded", st.Stats().Health())
			}
			if got := dump(t, st); !mapsEqual(got, want) {
				t.Errorf("salvaged state %v,\nwant the full final state %v", got, want)
			}
		})
	}
}

// TestCrashMatrixSharded asserts the per-shard property: cutting or
// corrupting one shard's WAL affects exactly that shard's committed
// suffix while every other shard recovers in full.
func TestCrashMatrixSharded(t *testing.T) {
	const shards = 2
	srcDir := t.TempDir()
	opts := crashOpts(srcDir)
	opts.Shards = shards
	opts.EPCBytes = 32 << 20
	st := mustOpen(t, opts)

	segs := make([]string, shards)
	for i := range segs {
		segs[i] = singleSegment(t, filepath.Join(srcDir, fmt.Sprintf("shard-%d", i)))
	}
	segSize := func(i int) int64 {
		fi, err := os.Stat(segs[i])
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}

	// Per-shard op history, attributed by watching which shard's
	// segment grew: shardEnds[i][k] = shard i's file length after its
	// k-th op, shardOps[i] the ops routed to it.
	shardEnds := make([][]int64, shards)
	shardOps := make([][]crashOp, shards)
	for i := range shardEnds {
		shardEnds[i] = []int64{0}
	}
	for _, op := range crashScript {
		var err error
		if op.del {
			err = st.Delete([]byte(op.key))
		} else {
			err = st.Put([]byte(op.key), []byte(op.value))
		}
		if err != nil {
			t.Fatal(err)
		}
		grew := -1
		for i := 0; i < shards; i++ {
			if sz := segSize(i); sz > shardEnds[i][len(shardEnds[i])-1] {
				if grew != -1 {
					t.Fatalf("op %q grew two shards", op.key)
				}
				grew = i
				shardEnds[i] = append(shardEnds[i], sz)
				shardOps[i] = append(shardOps[i], op)
			}
		}
		if grew == -1 {
			t.Fatalf("op %q grew no shard's WAL", op.key)
		}
	}
	mustClose(t, st)
	for i := 0; i < shards; i++ {
		if len(shardOps[i]) == 0 {
			t.Fatalf("shard %d received no ops; pick keys that spread across shards", i)
		}
	}

	data := make([][]byte, shards)
	for i := range data {
		b, err := os.ReadFile(segs[i])
		if err != nil {
			t.Fatal(err)
		}
		data[i] = b
	}
	manifest, err := os.ReadFile(filepath.Join(srcDir, manifestName))
	if err != nil {
		t.Fatalf("sharded store published no manifest: %v", err)
	}

	// checkState verifies every key in the script through Get, since a
	// hash-partitioned store has no ordered Scan.
	checkState := func(t *testing.T, st Store, want map[string]string, context string) {
		t.Helper()
		seen := make(map[string]bool)
		for _, op := range crashScript {
			if seen[op.key] {
				continue
			}
			seen[op.key] = true
			v, err := st.Get([]byte(op.key))
			wantV, present := want[op.key]
			switch {
			case present && err != nil:
				t.Fatalf("%s: Get(%s): %v, want %q", context, op.key, err, wantV)
			case present && string(v) != wantV:
				t.Fatalf("%s: Get(%s) = %q, want %q", context, op.key, v, wantV)
			case !present && !errors.Is(err, ErrNotFound):
				t.Fatalf("%s: Get(%s) = %q, %v, want ErrNotFound", context, op.key, v, err)
			}
		}
	}

	// cloneDirs writes all shards intact except victim, which gets mut.
	// The manifest rides along: a crash image always includes it, since
	// it is published before any shard lineage exists.
	cloneDirs := func(t *testing.T, victim int, mut []byte) string {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < shards; i++ {
			b := data[i]
			if i == victim {
				b = mut
			}
			sub := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[i])), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	// expectedState merges shard v's committed prefix of k ops with the
	// full history of every other shard.
	expectedState := func(victim, k int) map[string]string {
		want := make(map[string]string)
		for _, op := range crashScript {
			mine := false
			for _, vop := range shardOps[victim] {
				if vop == op {
					mine = true
				}
			}
			if mine {
				continue
			}
			if op.del {
				delete(want, op.key)
			} else {
				want[op.key] = op.value
			}
		}
		for _, op := range shardOps[victim][:k] {
			if op.del {
				delete(want, op.key)
			} else {
				want[op.key] = op.value
			}
		}
		return want
	}

	for victim := 0; victim < shards; victim++ {
		t.Run(fmt.Sprintf("truncate-shard-%d", victim), func(t *testing.T) {
			for size := int64(0); size <= int64(len(data[victim])); size++ {
				k := committedPrefix(shardEnds[victim], size)
				dir := cloneDirs(t, victim, data[victim][:size])
				o := crashOpts(dir)
				o.Shards = shards
				o.EPCBytes = 32 << 20
				st, err := Open(o)
				if err != nil {
					t.Fatalf("shard %d cut to %d bytes: reopen failed: %v", victim, size, err)
				}
				checkState(t, st, expectedState(victim, k),
					fmt.Sprintf("shard %d cut to %d bytes (prefix %d)", victim, size, k))
				mustClose(t, st)
			}
		})
		t.Run(fmt.Sprintf("flip-shard-%d", victim), func(t *testing.T) {
			for off := int64(0); off < int64(len(data[victim])); off++ {
				mut := append([]byte(nil), data[victim]...)
				mut[off] ^= 0x40
				dir := cloneDirs(t, victim, mut)
				o := crashOpts(dir)
				o.Shards = shards
				o.EPCBytes = 32 << 20
				o.IntegrityPolicy = FailStop
				st, err := Open(o)
				if err == nil {
					mustClose(t, st)
					t.Fatalf("shard %d flip at %d: FailStop open succeeded on a tampered shard", victim, off)
				}
				if !errors.Is(err, ErrIntegrity) {
					t.Fatalf("shard %d flip at %d: %v does not wrap ErrIntegrity", victim, off, err)
				}
			}
		})
	}
}
