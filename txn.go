package aria

// Txn is an optimistic multi-key transaction over a Store. Reads go to
// the store and record the version they observed; writes buffer in a
// private overlay, so later reads inside the transaction see them
// (read-your-writes) while other clients see nothing until Commit.
// Commit validates that every key read still carries the version it was
// read at — including keys read as absent, which must still be absent —
// and applies all buffered writes atomically, or fails with
// ErrTxnConflict and applies none of them.
//
//	txn := aria.NewTxn(st)
//	v, _ := txn.Get([]byte("balance"))
//	txn.Put([]byte("balance"), newBalance(v))
//	txn.Delete([]byte("hold"))
//	if err := txn.Commit(); errors.Is(err, aria.ErrTxnConflict) {
//		// somebody else won; re-read and retry
//	}
//
// A Txn is not safe for concurrent use and is spent after Commit:
// start a fresh one to retry.

import "time"

// txnPending is one buffered overlay write.
type txnPending struct {
	value []byte
	del   bool
	ttl   time.Duration
}

// Txn is an optimistic transaction: buffered writes plus the versions
// of everything read. See the package example above; built on
// Store.TxnCommit.
type Txn struct {
	st     Store
	reads  map[string]uint64
	writes map[string]txnPending
	order  []string // write keys in first-write order, for deterministic commit records
}

// NewTxn starts an optimistic transaction against st.
func NewTxn(st Store) *Txn {
	return &Txn{
		st:     st,
		reads:  make(map[string]uint64),
		writes: make(map[string]txnPending),
	}
}

// Get reads a key through the transaction: buffered writes win
// (read-your-writes); otherwise the store is read and the observed
// version — including "absent", version 0 — joins the validation set
// checked at Commit.
func (t *Txn) Get(key []byte) ([]byte, error) {
	if p, ok := t.writes[string(key)]; ok {
		if p.del {
			return nil, ErrNotFound
		}
		return append([]byte(nil), p.value...), nil
	}
	v, ver, err := t.st.GetV(key)
	switch {
	case err == nil:
		t.noteRead(key, ver)
		return v, nil
	case err == ErrNotFound:
		t.noteRead(key, 0)
		return nil, ErrNotFound
	default:
		return nil, err
	}
}

// noteRead records the first observed version of a key; later reads in
// the same transaction see the overlay or the same snapshot version.
func (t *Txn) noteRead(key []byte, ver uint64) {
	if _, ok := t.reads[string(key)]; !ok {
		t.reads[string(key)] = ver
	}
}

// Put buffers a write; nothing reaches the store until Commit.
func (t *Txn) Put(key, value []byte) {
	t.buffer(key, txnPending{value: append([]byte(nil), value...)})
}

// PutTTL buffers a write with a time-to-live, applied like
// Store.PutTTL when the transaction commits.
func (t *Txn) PutTTL(key, value []byte, ttl time.Duration) {
	t.buffer(key, txnPending{value: append([]byte(nil), value...), ttl: ttl})
}

// Delete buffers a deletion; reads inside the transaction see the key
// as absent from now on.
func (t *Txn) Delete(key []byte) {
	t.buffer(key, txnPending{del: true})
}

func (t *Txn) buffer(key []byte, p txnPending) {
	if _, ok := t.writes[string(key)]; !ok {
		t.order = append(t.order, string(key))
	}
	t.writes[string(key)] = p
}

// Commit validates the read set and applies the buffered writes
// atomically via Store.TxnCommit. On ErrTxnConflict nothing was
// applied; start a fresh Txn to retry. An empty transaction (no reads,
// no writes) commits trivially.
func (t *Txn) Commit() error {
	ops := make([]TxnOp, 0, len(t.reads)+len(t.writes))
	// Read-only validation entries for keys read but not written.
	for k, ver := range t.reads {
		if _, written := t.writes[k]; written {
			continue
		}
		ops = append(ops, TxnOp{Key: []byte(k), ReadOnly: true, Check: true, Version: ver})
	}
	// sort for a deterministic record independent of map iteration.
	sortOpsByKey(ops)
	for _, k := range t.order {
		p := t.writes[k]
		op := TxnOp{Key: []byte(k), Value: p.value, Delete: p.del, TTL: p.ttl}
		if ver, read := t.reads[k]; read {
			op.Check = true
			op.Version = ver
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil
	}
	return t.st.TxnCommit(ops)
}

func sortOpsByKey(ops []TxnOp) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && string(ops[j].Key) < string(ops[j-1].Key); j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}
