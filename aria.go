// Package aria is a reproduction of "Aria: Tolerating Skewed Workloads in
// Secure In-memory Key-value Stores" (Yang et al., ICDE 2021) as a Go
// library.
//
// Aria is a secure in-memory KV store for SGX-class trusted execution
// environments. KV pairs and the index live in untrusted memory; a flat
// Merkle tree of encryption counters provides confidentiality, integrity,
// and freshness; and the paper's core contribution — the Secure Cache —
// keeps the hot part of that tree inside the limited EPC at node
// granularity, so skewed workloads verify hot keys with a single trusted
// read instead of a Merkle walk.
//
// Since real SGX hardware is not assumed, the library runs on a
// deterministic enclave simulator (see internal/sgx and DESIGN.md §1):
// the cryptography is real, the clock is simulated cycles. Every design
// the paper measures is available as a Scheme:
//
//	AriaHash / AriaTree           the paper's system (Aria-H / Aria-T)
//	NoCacheHash / NoCacheTree     "Aria w/o Cache" (counters in EPC, hardware paging)
//	ShieldStoreScheme             the EuroSys'19 comparator
//	BaselineHash / BaselineTree   whole store inside the EPC
//
// Quick start:
//
//	st, err := aria.Open(aria.Options{Scheme: aria.AriaHash, ExpectedKeys: 100000})
//	if err != nil { ... }
//	err = st.Put([]byte("k"), []byte("v"))
//	v, err := st.Get([]byte("k"))
package aria

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ariakv/aria/internal/baseline"
	"github.com/ariakv/aria/internal/core"
	"github.com/ariakv/aria/internal/securecache"
	"github.com/ariakv/aria/internal/sgx"
	"github.com/ariakv/aria/internal/shieldstore"
	"github.com/ariakv/aria/obs"
	"github.com/ariakv/aria/wal"
)

// Scheme selects one of the designs evaluated in the paper.
type Scheme int

const (
	// AriaHash is Aria with the chained hash index (Aria-H).
	AriaHash Scheme = iota
	// AriaTree is Aria with the B-tree index (Aria-T).
	AriaTree
	// NoCacheHash is "Aria w/o Cache" over the hash index: all counters
	// in a plain EPC array, hardware secure paging only.
	NoCacheHash
	// NoCacheTree is "Aria w/o Cache" over the B-tree index.
	NoCacheTree
	// ShieldStoreScheme is the ShieldStore comparator (EuroSys 2019).
	ShieldStoreScheme
	// BaselineHash places an ordinary hash-table store entirely in the
	// EPC.
	BaselineHash
	// BaselineTree places an ordinary B-tree store entirely in the EPC.
	BaselineTree
	// AriaBPTree is Aria with the B+-tree index: interior nodes hold
	// router keys only and the store supports verified range scans.
	// This implements the extension the paper leaves as future work
	// (§VII).
	AriaBPTree
)

// String returns the scheme's benchmark-table name (e.g. "aria-h"),
// matching the labels used in EXPERIMENTS.md and the metric catalogue.
func (s Scheme) String() string {
	switch s {
	case AriaHash:
		return "aria-h"
	case AriaTree:
		return "aria-t"
	case NoCacheHash:
		return "nocache-h"
	case NoCacheTree:
		return "nocache-t"
	case ShieldStoreScheme:
		return "shieldstore"
	case BaselineHash:
		return "baseline-h"
	case BaselineTree:
		return "baseline-t"
	case AriaBPTree:
		return "aria-bp"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ReplacementPolicy selects the Secure Cache eviction policy.
type ReplacementPolicy = securecache.Policy

// Replacement policies (paper §IV-E: FIFO avoids LRU's hit penalty).
const (
	FIFO = securecache.FIFO
	LRU  = securecache.LRU
)

// Errors returned by stores. Schemes map their internal errors onto these.
var (
	ErrNotFound  = errors.New("aria: key not found")
	ErrIntegrity = errors.New("aria: integrity verification failed (attack detected)")
	ErrTooLarge  = errors.New("aria: key or value exceeds configured maximum")
	ErrEmptyKey  = errors.New("aria: empty key")
	ErrNoScan    = errors.New("aria: scheme does not support range scans")
	// ErrQuarantined marks an operation on a key that an earlier operation
	// found tampered under the Quarantine policy. It always arrives
	// wrapped together with ErrIntegrity.
	ErrQuarantined = errors.New("aria: key quarantined after earlier tamper detection")
	// ErrNotDurable marks a Checkpoint on a store opened without
	// Options.DataDir: there is no WAL or snapshot lineage to
	// checkpoint.
	ErrNotDurable = errors.New("aria: store was opened without DataDir (not durable)")
	// ErrFenced marks an operation on a node that a newer replication
	// generation has fenced: a promoted replica took over, and this
	// node's lineage must be re-seeded before it can serve again.
	ErrFenced = errors.New("aria: node fenced by a newer replication generation")
	// ErrReadOnlyReplica marks a write sent to a replica: replicas apply
	// only the primary's sealed WAL stream and serve reads.
	ErrReadOnlyReplica = errors.New("aria: replica is read-only (writes go to the primary)")
	// ErrLagging marks a watermarked read on a replica that has not yet
	// applied the client's watermark; the client may wait and retry or
	// fail over to the primary.
	ErrLagging = errors.New("aria: replica lags behind the read's watermark")
	// ErrCASMismatch marks a CompareAndSwap whose expected version no
	// longer matches the key's current version: another writer got there
	// first (or the key was deleted/expired). Re-read and retry.
	ErrCASMismatch = errors.New("aria: compare-and-swap version mismatch")
	// ErrTxnConflict marks a transaction commit whose version validation
	// failed: a key in the read set changed (or appeared/disappeared)
	// since it was read. Nothing was applied; rebuild and retry.
	ErrTxnConflict = errors.New("aria: transaction conflict (validation failed)")
)

// FsyncPolicy selects when a durable store's WAL flushes to stable
// storage (alias of wal.FsyncPolicy; only meaningful with
// Options.DataDir).
type FsyncPolicy = wal.FsyncPolicy

// Fsync policies: FsyncBatch group-commits each append call with one
// fsync (the default), FsyncAlways syncs every record, FsyncNever
// leaves flushing to the OS.
const (
	FsyncBatch  = wal.FsyncBatch
	FsyncAlways = wal.FsyncAlways
	FsyncNever  = wal.FsyncNever
)

// IntegrityPolicy selects how a store behaves after detecting tampering.
type IntegrityPolicy int

const (
	// FailStop (the default) preserves fail-fast semantics: every
	// operation that touches tampered state returns ErrIntegrity, trusted
	// state is never corrupted by the detection, and Stats().Health()
	// reports HealthFailed so operators can retire the instance. The
	// store does not guess at blast radius: each operation re-verifies
	// and fails on its own evidence.
	FailStop IntegrityPolicy = iota
	// Quarantine degrades instead of failing: a key whose verification
	// fails is marked poisoned and every later operation on it
	// short-circuits with ErrIntegrity (wrapping ErrQuarantined), while
	// untampered keys keep serving. Stats().Health() reports
	// HealthDegraded and QuarantinedKeys counts the poisoned set.
	Quarantine
)

// String returns "failstop" or "quarantine".
func (p IntegrityPolicy) String() string {
	switch p {
	case Quarantine:
		return "quarantine"
	default:
		return "failstop"
	}
}

// HealthState summarizes a store's integrity condition.
type HealthState string

const (
	// HealthOK means no integrity failure has been detected.
	HealthOK HealthState = "ok"
	// HealthDegraded means tampering was detected under Quarantine:
	// poisoned keys fail, the rest keep serving.
	HealthDegraded HealthState = "degraded"
	// HealthFailed means tampering was detected under FailStop: the
	// instance should be retired and re-attested.
	HealthFailed HealthState = "failed"
)

// integrityGuard implements the store-level integrity-failure policy. It
// observes every operation's outcome, latches detected violations, and
// (under Quarantine) poisons tampered keys.
type integrityGuard struct {
	policy   IntegrityPolicy
	mu       sync.Mutex
	failures uint64
	poisoned map[string]struct{}
}

// pre short-circuits operations on quarantined keys before any untrusted
// state is touched.
func (g *integrityGuard) pre(key []byte) error {
	if g.policy != Quarantine {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, bad := g.poisoned[string(key)]; bad {
		return fmt.Errorf("%w: %w", ErrIntegrity, ErrQuarantined)
	}
	return nil
}

// observe records an operation's outcome. Key may be nil for whole-store
// operations (audits, scans), which are counted but cannot be poisoned.
func (g *integrityGuard) observe(key []byte, err error) error {
	if err == nil || !errors.Is(err, ErrIntegrity) {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.failures++
	if g.policy == Quarantine && len(key) > 0 {
		if g.poisoned == nil {
			g.poisoned = make(map[string]struct{})
		}
		g.poisoned[string(key)] = struct{}{}
	}
	return err
}

func (g *integrityGuard) fill(st *Stats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st.IntegrityPolicy = g.policy
	st.IntegrityFailures = g.failures
	st.QuarantinedKeys = len(g.poisoned)
}

// Options configures a store. Zero values get paper defaults.
type Options struct {
	// Scheme selects the design (default AriaHash).
	Scheme Scheme
	// EPCBytes sizes the simulated EPC (default 91 MB, the paper's
	// testbed).
	EPCBytes int
	// ExpectedKeys sizes the counter area and index (default 1M).
	ExpectedKeys int
	// SecureCacheBytes is the Secure Cache EPC budget (default: as much
	// of the EPC as remains sensible, per the paper's "as large as
	// possible" setting — 70% of the EPC).
	SecureCacheBytes int
	// PinBudgetBytes is the EPC budget for Merkle level pinning
	// (default 4 MB).
	PinBudgetBytes int
	// Arity is the Merkle tree branch factor (default 8; Figure 15).
	Arity int
	// Policy is the Secure Cache replacement policy (default FIFO).
	Policy ReplacementPolicy
	// StopSwap enables the hit-ratio stop-swap mode (default on for
	// Aria schemes; set DisableStopSwap to turn off).
	DisableStopSwap bool
	// DisablePinning turns level pinning off (Figure 12 ablations).
	DisablePinning bool
	// OcallAlloc exits the enclave for every untrusted allocation
	// (the AriaBase arm of Figure 12).
	OcallAlloc bool
	// DisableCleanDiscard writes clean Secure Cache victims back on
	// eviction, modelling hardware EWB semantics (§IV-C ablation).
	DisableCleanDiscard bool
	// WithoutSGX prices enclave memory like ordinary DRAM and removes
	// paging/edge-call costs ("Aria w/o SGX" in Figure 12). Crypto
	// still runs.
	WithoutSGX bool
	// ShieldStoreRootBytes is the EPC budget for ShieldStore bucket
	// roots (default 64 MB, the paper's configuration).
	ShieldStoreRootBytes int
	// BucketLoad is the hash index target chain length (default 4).
	BucketLoad int
	// BTreeDegree is the B-tree minimum degree (default 8).
	BTreeDegree int
	// MaxKeySize bounds key length in bytes (default 256).
	MaxKeySize int
	// MaxValueSize bounds value length in bytes (default 4096).
	MaxValueSize int
	// IntegrityPolicy selects what happens after tamper detection
	// (default FailStop; see the policy docs).
	IntegrityPolicy IntegrityPolicy
	// Shards hash-partitions the keyspace across this many independent
	// enclave instances, each with a 1/N share of every EPC budget above
	// (the paper's multi-tenant split, §VI-D5). Operations on different
	// shards run concurrently; the returned store is safe for use from
	// multiple goroutines and implements ConcurrentStore and Sharded.
	// Default 1: a single enclave, identical to the store this option
	// did not exist for.
	Shards int
	// DataDir, when non-empty, makes the store durable: every
	// successful write is sealed (AES-CTR + chained CMAC under
	// seed-derived keys, simulating SGX sealing) and appended to a
	// write-ahead log in this directory, checkpoints write atomic
	// sealed snapshots, and Open recovers the committed state — newest
	// valid snapshot plus WAL replay, stopping cleanly at a torn tail
	// and routing tampered records through IntegrityPolicy. With
	// Shards > 1 each shard keeps its own lineage in a shard-<i>
	// subdirectory, recovered in parallel. The returned store
	// implements Durable. Empty (the default) keeps the store purely
	// in-memory.
	DataDir string
	// Fsync selects when the WAL flushes (default FsyncBatch: one
	// fsync per append call, so batched writes group-commit). Only
	// meaningful with DataDir.
	Fsync FsyncPolicy
	// CheckpointEvery takes a background checkpoint after this many
	// logged records (0, the default, disables automatic checkpoints;
	// explicit Durable.Checkpoint calls always work). Only meaningful
	// with DataDir.
	CheckpointEvery int
	// ColdCompress enables the cold tier (DESIGN.md §15). Checkpoints
	// write immutable, sorted, compressed, sealed segments instead of
	// re-sealing the whole keyspace: an incremental checkpoint persists
	// only the keys written since the last one, and a sealed set
	// manifest names which segments constitute the recovery point. Keys
	// idle since the previous checkpoint are demoted out of enclave
	// memory into a compressed cold area and promoted
	// (decompress-on-miss) when touched again, shrinking resident bytes
	// so the EPC holds a larger hot set. Recovery = newest valid
	// segment set + WAL replay. Only meaningful with DataDir.
	ColdCompress bool
	// CompactEvery bounds the segment set: when a checkpoint would grow
	// the set past this many segments, it compacts — rewrites every
	// live key into one segment and starts a fresh set (default 8).
	// Only meaningful with ColdCompress.
	CompactEvery int
	// Seed drives deterministic initialisation.
	Seed uint64
	// MeasureOff creates the store with cycle accounting disabled (bulk
	// load); call Store.SetMeasuring(true) before the measured window.
	MeasureOff bool
	// Now, when non-nil, replaces the wall clock the TTL machinery reads
	// (expiry stamps, lazy-expiry checks, sweeper passes). Tests inject a
	// fake clock here; nil (the default) uses time.Now. Expiry deadlines
	// are stored as absolute timestamps, so the clock source must be
	// monotone for expiry to behave sensibly.
	Now func() time.Time
	// TTLSweepEvery, when positive, starts a background sweeper that
	// physically removes expired keys at this interval (expired keys are
	// always logically absent on read regardless — the sweeper only
	// reclaims memory). Each pass is charged to the cost simulator like
	// any other enclave work. Zero (the default) disables the background
	// goroutine: expired keys are reclaimed lazily as reads touch them.
	TTLSweepEvery time.Duration
	// Metrics, when non-nil, instruments the store into the given
	// registry: per-operation latency histograms (wall nanoseconds and
	// simulated cycles), operation/error counters, and scrape-time
	// enclave event counters (page swaps, ECALLs/OCALLs, MACs, Secure
	// Cache hits/misses), all labelled by shard. The registry becomes the
	// single synchronized read path into the store's counters, so it is
	// safe to scrape while operations run. nil (the default) disables
	// instrumentation entirely — the returned store is the same object a
	// build without metrics produces, so the disabled path has zero
	// overhead. See docs/OPERATIONS.md for the metric catalogue.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of a store and its enclave.
type Stats struct {
	Scheme  Scheme // which Scheme the store runs
	Gets    uint64 // Get operations since open/ResetStats
	Puts    uint64 // Put operations since open/ResetStats
	Deletes uint64 // Delete operations since open/ResetStats
	Keys    int    // live keys currently stored

	// SimCycles is the simulated clock; SimSeconds converts it at the
	// nominal 3.6 GHz.
	SimCycles  uint64
	SimSeconds float64 // SimCycles expressed in seconds at 3.6 GHz

	// PageSwaps counts EPC page evictions (4 KB granularity) in the
	// enclave simulator; the remaining fields count other priced
	// enclave events.
	PageSwaps uint64
	Ecalls    uint64 // enclave entries (edge calls in)
	Ocalls    uint64 // enclave exits (edge calls out)
	MACs      uint64 // AES-CMAC computations/verifications
	CTROps    uint64 // AES-CTR encrypt/decrypt operations

	// Batches counts batched enclave entries (one per MGet/MPut/MDelete
	// reaching this store) and BatchedKeys the keys they carried, so
	// BatchedKeys/Batches is the realized batch size and comparing
	// Batches against Ecalls shows how much of the edge-call budget the
	// batch path amortized.
	Batches     uint64
	BatchedKeys uint64 // keys carried by batched entries (see Batches)

	// CacheHits counts Secure Cache node hits (zero for schemes
	// without a Secure Cache), and the fields below describe the rest
	// of its behaviour.
	CacheHits     uint64
	CacheMisses   uint64  // Secure Cache node misses
	CacheHitRatio float64 // CacheHits / (CacheHits + CacheMisses)
	StopSwap      bool    // whether stop-swap mode engaged (paper §IV-E)
	PinnedLevels  int     // Merkle levels pinned resident in the EPC

	// EPCUsedBytes is the allocated enclave heap.
	EPCUsedBytes int

	// IntegrityPolicy echoes the policy the store was opened with (see
	// IntegrityPolicy and Health).
	IntegrityPolicy   IntegrityPolicy
	IntegrityFailures uint64 // tamper detections since open
	QuarantinedKeys   int    // keys poisoned under Quarantine

	// WALAppends counts group-committed WAL append calls; the
	// durability counters below are all zero unless the store was
	// opened with Options.DataDir.
	WALAppends uint64
	WALRecords uint64 // records sealed into the WAL
	WALBytes   uint64 // sealed bytes appended, framing included
	WALFsyncs  uint64 // fsyncs issued by the fsync policy
	// Checkpoints counts sealed snapshots taken since open.
	Checkpoints uint64
	// RecoveredRecords counts records recovery restored at Open:
	// snapshot pairs loaded plus WAL records replayed.
	RecoveredRecords uint64

	// ColdKeys counts keys currently demoted into the compressed cold
	// tier (Options.ColdCompress); the cold/compression/segment fields
	// below are all zero unless the cold tier is enabled.
	ColdKeys int
	// ColdBytes is the compressed bytes those keys occupy in the cold
	// area (what "resident" shrank by, roughly, before metadata).
	ColdBytes int
	// ColdHits counts accesses served by promoting a key out of the
	// cold tier (decompress-on-miss).
	ColdHits uint64
	// ColdMisses counts read lookups that found their key neither
	// resident nor in the cold tier.
	ColdMisses uint64
	// CompRawBytes totals the compressor's input bytes over demotions
	// and segment writes.
	CompRawBytes uint64
	// CompBytes totals the compressor's output bytes; CompBytes over
	// CompRawBytes is the realized compression ratio.
	CompBytes uint64
	// CompDictBytes is the serialized size of the newest trained
	// dictionary.
	CompDictBytes int
	// Segments counts the segment files in the current set.
	Segments int
	// SegmentBytes is the current set's total on-disk size.
	SegmentBytes int64
	// Compactions counts major compactions (full set rewrites).
	Compactions uint64

	// TxnCommits counts successfully committed multi-key transactions;
	// the remaining transactional/TTL counters below cover the richer
	// write semantics (CompareAndSwap, PutTTL, TxnCommit).
	TxnCommits uint64
	// TxnConflicts counts transaction commits rejected with
	// ErrTxnConflict (version validation failed; nothing applied).
	TxnConflicts uint64
	// CASMismatches counts CompareAndSwap calls rejected with
	// ErrCASMismatch.
	CASMismatches uint64
	// TTLExpired counts keys found expired by reads and reclaimed lazily.
	TTLExpired uint64
	// TTLSwept counts keys physically removed by background sweeper
	// passes.
	TTLSwept uint64
	// TTLSweeps counts completed background sweeper passes.
	TTLSweeps uint64

	// ReplRole is the node's replication role ("primary", "replica",
	// "fenced") when replication is active; empty otherwise. The
	// replication fields are filled by the serving layer, not the store
	// itself.
	ReplRole string
	// ReplGeneration is the sealed replication generation the node
	// serves under (zero when replication is inactive).
	ReplGeneration uint64
	// ReplLag is a replica's apply lag in sequence numbers behind the
	// primary's last known next sequence (zero on a primary).
	ReplLag uint64
}

// Health summarizes the store's integrity condition: HealthOK while no
// tampering has been detected, HealthDegraded when a Quarantine store is
// serving around poisoned keys, HealthFailed when a FailStop store has
// detected an attack and should be retired.
func (s Stats) Health() HealthState {
	switch {
	case s.IntegrityFailures == 0:
		return HealthOK
	case s.IntegrityPolicy == Quarantine:
		return HealthDegraded
	default:
		return HealthFailed
	}
}

// TxnOp is one operation of a multi-key transaction commit (see
// Store.TxnCommit). An op either writes (put, delete, put-with-TTL) or
// only validates (ReadOnly); any op may additionally carry a version
// check that must hold at commit time.
type TxnOp struct {
	// Key is the operation's key.
	Key []byte
	// Value is the value to write. Ignored for deletes and read-only
	// checks.
	Value []byte
	// Delete removes the key instead of writing Value.
	Delete bool
	// ReadOnly marks a pure validation entry: nothing is written, but
	// the version check (which must be set) still gates the commit.
	ReadOnly bool
	// TTL, when positive, gives the written value a time-to-live,
	// exactly like PutTTL. Ignored for deletes and read-only checks.
	TTL time.Duration
	// Check enables version validation: the key's current version must
	// equal Version (0 = key absent) or the commit fails with
	// ErrTxnConflict.
	Check bool
	// Version is the expected version when Check is set.
	Version uint64
}

// Store is the public interface every scheme implements.
type Store interface {
	// Put inserts or updates a key.
	Put(key, value []byte) error
	// Get returns a copy of the value stored under key.
	Get(key []byte) ([]byte, error)
	// Delete removes a key.
	Delete(key []byte) error
	// MGet fetches a batch of keys through one enclave entry: the whole
	// batch pays a single ECALL/OCALL round trip and one boundary copy
	// per direction instead of per key. Results are positional: vals[i]
	// is keys[i]'s value or nil. The error slice is nil when every key
	// succeeded; otherwise it has len(keys) entries with nil at the
	// successful positions (ErrNotFound per absent key).
	MGet(keys [][]byte) (vals [][]byte, errs []error)
	// MPut applies a batch of writes through one enclave entry, with the
	// same amortized edge accounting and positional error contract as
	// MGet.
	MPut(pairs []KV) []error
	// MDelete removes a batch of keys through one enclave entry, with
	// the same amortized edge accounting and positional error contract
	// as MGet.
	MDelete(keys [][]byte) []error
	// GetV returns a copy of the value stored under key together with
	// the key's current version. Versions are assigned from a per-store
	// monotonic counter on every successful write, so a version observed
	// by GetV can later be handed to CompareAndSwap (or a Txn check) to
	// detect intervening writes — including delete/recreate cycles, which
	// always produce a fresh, strictly larger version (no ABA).
	GetV(key []byte) (value []byte, version uint64, err error)
	// CompareAndSwap writes value under key only if the key's current
	// version equals expect; otherwise it returns ErrCASMismatch and
	// changes nothing. expect == 0 means "the key must be absent"
	// (insert-if-absent). The version check runs against trusted
	// in-enclave metadata, so a successful CAS costs the same as a Put.
	CompareAndSwap(key, value []byte, expect uint64) error
	// PutTTL inserts or updates a key with a time-to-live: after ttl
	// elapses the key is logically absent (reads return ErrNotFound) and
	// is physically reclaimed lazily or by the background sweeper (see
	// Options.TTLSweepEvery). ttl <= 0 stores the key without expiry,
	// exactly like Put. Expiry deadlines are absolute timestamps sealed
	// into the WAL and snapshots, so they survive recovery.
	PutTTL(key, value []byte, ttl time.Duration) error
	// TxnCommit atomically validates and applies a multi-key
	// transaction: every op with Check set must find its key at exactly
	// Version (0 = absent), or the whole commit fails with
	// ErrTxnConflict and nothing is applied. On success all writes apply
	// and become durable through one sealed WAL group-commit record, so
	// recovery can never observe a partially applied transaction. Most
	// callers use the Txn overlay type rather than building ops by hand.
	TxnCommit(ops []TxnOp) error
	// Stats returns a snapshot of operation and enclave counters.
	Stats() Stats
	// VerifyIntegrity audits the entire store offline, returning
	// ErrIntegrity if any tampering is found.
	VerifyIntegrity() error
	// SetMeasuring toggles simulated-cycle accounting (exclude load
	// phases from measurements).
	SetMeasuring(on bool)
	// ResetStats zeroes the enclave clock and event counters (start of
	// a measured window).
	ResetStats()
}

// Open creates a store of the selected scheme inside a fresh simulated
// enclave — or, with Options.Shards > 1, a hash-partitioned family of
// them behind one Store (see sharded.go).
func Open(opts Options) (Store, error) {
	opts = optsWithDefaults(opts)
	if opts.Shards > 1 {
		return openSharded(opts)
	}
	st, err := openStore(opts)
	if err != nil {
		return nil, err
	}
	if opts.DataDir != "" {
		// Refuse to open a directory that a sharded store claimed: its
		// manifest records Shards > 1, and recovering only the top-level
		// lineage would present an empty store (see manifest.go).
		if err := checkShardManifest(opts.DataDir, opts.Seed, 1); err != nil {
			return nil, err
		}
		st, err = openDurable(st, opts, opts.DataDir)
		if err != nil {
			return nil, err
		}
	}
	if opts.Metrics != nil {
		return meter(st, opts.Metrics, "0"), nil
	}
	return st, nil
}

// optsWithDefaults fills zero values with the paper defaults. It runs on
// the aggregate options before any shard split, so defaults derive from
// the total budgets.
func optsWithDefaults(opts Options) Options {
	if opts.EPCBytes <= 0 {
		opts.EPCBytes = 91 << 20
	}
	if opts.ExpectedKeys <= 0 {
		opts.ExpectedKeys = 1 << 20
	}
	if opts.SecureCacheBytes == 0 {
		opts.SecureCacheBytes = opts.EPCBytes / 10 * 8
	}
	if opts.PinBudgetBytes == 0 {
		opts.PinBudgetBytes = 4 << 20
		if opts.PinBudgetBytes > opts.EPCBytes/8 {
			opts.PinBudgetBytes = opts.EPCBytes / 8
		}
	}
	if opts.ShieldStoreRootBytes == 0 {
		// The paper's configuration is 64 MB of roots; smaller EPCs get
		// the largest root array that still avoids secure paging.
		opts.ShieldStoreRootBytes = 64 << 20
		if opts.ShieldStoreRootBytes > opts.EPCBytes/10*7 {
			opts.ShieldStoreRootBytes = opts.EPCBytes / 10 * 7
		}
	}
	return opts
}

// openStore builds one single-enclave store from already-filled options.
func openStore(opts Options) (Store, error) {
	costs := sgx.DefaultCosts()
	if opts.WithoutSGX {
		costs = sgx.InsecureCosts()
	}
	enc := sgx.New(sgx.Config{
		EPCBytes:   opts.EPCBytes,
		Costs:      costs,
		MeasureOff: opts.MeasureOff,
	})
	switch opts.Scheme {
	case AriaHash, AriaTree, AriaBPTree, NoCacheHash, NoCacheTree:
		co := core.Options{
			ExpectedKeys:        opts.ExpectedKeys,
			BucketLoad:          opts.BucketLoad,
			Arity:               opts.Arity,
			CacheBytes:          opts.SecureCacheBytes,
			PinBudgetBytes:      opts.PinBudgetBytes,
			Policy:              opts.Policy,
			DisablePinning:      opts.DisablePinning,
			StopSwap:            !opts.DisableStopSwap,
			OcallAlloc:          opts.OcallAlloc,
			DisableCleanDiscard: opts.DisableCleanDiscard,
			MaxKeySize:          opts.MaxKeySize,
			MaxValueSize:        opts.MaxValueSize,
			BTreeDegree:         opts.BTreeDegree,
			Seed:                opts.Seed,
		}
		switch opts.Scheme {
		case AriaTree, NoCacheTree:
			co.Index = core.BTreeIndex
		case AriaBPTree:
			co.Index = core.BPTreeIndex
		default:
			co.Index = core.HashIndex
		}
		if opts.Scheme == NoCacheHash || opts.Scheme == NoCacheTree {
			co.PlainCounters = true
		}
		e, err := core.New(enc, co)
		if err != nil {
			return nil, err
		}
		return newSemStore(&coreStore{e: e, enc: enc, scheme: opts.Scheme,
			g: integrityGuard{policy: opts.IntegrityPolicy}}, opts), nil
	case ShieldStoreScheme:
		s, err := shieldstore.New(enc, shieldstore.Options{
			RootBudgetBytes: opts.ShieldStoreRootBytes,
			MaxKeySize:      opts.MaxKeySize,
			MaxValueSize:    opts.MaxValueSize,
			Seed:            opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		return newSemStore(&shieldStore{s: s, enc: enc,
			g: integrityGuard{policy: opts.IntegrityPolicy}}, opts), nil
	case BaselineHash, BaselineTree:
		s, err := baseline.New(enc, baseline.Options{
			ExpectedKeys: opts.ExpectedKeys,
			BucketLoad:   opts.BucketLoad,
			Tree:         opts.Scheme == BaselineTree,
			BTreeDegree:  opts.BTreeDegree,
			MaxKeySize:   opts.MaxKeySize,
			MaxValueSize: opts.MaxValueSize,
		})
		if err != nil {
			return nil, err
		}
		return newSemStore(&baseStore{s: s, enc: enc, scheme: opts.Scheme,
			g: integrityGuard{policy: opts.IntegrityPolicy}}, opts), nil
	}
	return nil, fmt.Errorf("aria: unknown scheme %v", opts.Scheme)
}

// mapErr translates internal sentinel errors to the public ones while
// preserving the original as wrapped context.
func mapErr(err error, notFound, integrity, tooLarge, emptyKey error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, notFound):
		return ErrNotFound
	case errors.Is(err, integrity):
		return fmt.Errorf("%w: %v", ErrIntegrity, err)
	case errors.Is(err, tooLarge):
		return ErrTooLarge
	case errors.Is(err, emptyKey):
		return ErrEmptyKey
	}
	return err
}

// ---- Aria / Aria w/o Cache ----------------------------------------------------

type coreStore struct {
	e      *core.Engine
	enc    *sgx.Enclave
	scheme Scheme
	g      integrityGuard
}

func (c *coreStore) mapErr(err error) error {
	return mapErr(err, core.ErrNotFound, core.ErrIntegrity, core.ErrTooLarge, core.ErrEmptyKey)
}

func (c *coreStore) Put(key, value []byte) error {
	if err := c.g.pre(key); err != nil {
		return err
	}
	return c.g.observe(key, c.mapErr(c.e.Put(key, value)))
}

func (c *coreStore) Get(key []byte) ([]byte, error) {
	if err := c.g.pre(key); err != nil {
		return nil, err
	}
	v, err := c.e.Get(key)
	if err = c.g.observe(key, c.mapErr(err)); err != nil {
		return nil, err
	}
	return v, nil
}

func (c *coreStore) Delete(key []byte) error {
	if err := c.g.pre(key); err != nil {
		return err
	}
	return c.g.observe(key, c.mapErr(c.e.Delete(key)))
}

func (c *coreStore) VerifyIntegrity() error { return c.g.observe(nil, c.mapErr(c.e.VerifyIntegrity())) }

func (c *coreStore) SetMeasuring(on bool) { c.enc.SetMeasuring(on) }

func (c *coreStore) ResetStats() { c.enc.ResetStats() }

func (c *coreStore) Stats() Stats {
	es := c.e.Stats()
	st := baseStats(c.scheme, c.enc)
	st.Gets, st.Puts, st.Deletes = es.Gets, es.Puts, es.Deletes
	st.Keys = es.Keys
	st.CacheHits = es.Cache.Hits
	st.CacheMisses = es.Cache.Misses
	if es.Cache.Lookups > 0 {
		st.CacheHitRatio = float64(es.Cache.Hits) / float64(es.Cache.Lookups)
	}
	st.StopSwap = es.Cache.StopSwap
	st.PinnedLevels = es.Cache.PinnedLevels
	c.g.fill(&st)
	return st
}

// ---- ShieldStore ---------------------------------------------------------------

type shieldStore struct {
	s   *shieldstore.Store
	enc *sgx.Enclave
	g   integrityGuard
}

func (s *shieldStore) mapErr(err error) error {
	return mapErr(err, shieldstore.ErrNotFound, shieldstore.ErrIntegrity,
		shieldstore.ErrTooLarge, shieldstore.ErrEmptyKey)
}

func (s *shieldStore) Put(key, value []byte) error {
	if err := s.g.pre(key); err != nil {
		return err
	}
	return s.g.observe(key, s.mapErr(s.s.Put(key, value)))
}

func (s *shieldStore) Get(key []byte) ([]byte, error) {
	if err := s.g.pre(key); err != nil {
		return nil, err
	}
	v, err := s.s.Get(key)
	if err = s.g.observe(key, s.mapErr(err)); err != nil {
		return nil, err
	}
	return v, nil
}

func (s *shieldStore) Delete(key []byte) error {
	if err := s.g.pre(key); err != nil {
		return err
	}
	return s.g.observe(key, s.mapErr(s.s.Delete(key)))
}

func (s *shieldStore) VerifyIntegrity() error {
	return s.g.observe(nil, s.mapErr(s.s.VerifyIntegrity()))
}

func (s *shieldStore) SetMeasuring(on bool) { s.enc.SetMeasuring(on) }

func (s *shieldStore) ResetStats() { s.enc.ResetStats() }

func (s *shieldStore) Stats() Stats {
	st := baseStats(ShieldStoreScheme, s.enc)
	st.Keys = s.s.Keys()
	s.g.fill(&st)
	return st
}

// ---- Baseline -------------------------------------------------------------------

// baseStore keeps everything in the EPC: hardware protects it, so the
// integrity guard is inert — it exists only so Stats reports the policy
// uniformly across schemes.
type baseStore struct {
	s      *baseline.Store
	enc    *sgx.Enclave
	scheme Scheme
	g      integrityGuard
}

func (b *baseStore) mapErr(err error) error {
	return mapErr(err, baseline.ErrNotFound, errNever, baseline.ErrTooLarge, baseline.ErrEmptyKey)
}

// errNever is a sentinel that never matches: baseline stores are protected
// by hardware and have no software integrity failure mode.
var errNever = errors.New("never")

func (b *baseStore) Put(key, value []byte) error { return b.mapErr(b.s.Put(key, value)) }

func (b *baseStore) Get(key []byte) ([]byte, error) {
	v, err := b.s.Get(key)
	return v, b.mapErr(err)
}

func (b *baseStore) Delete(key []byte) error { return b.mapErr(b.s.Delete(key)) }

func (b *baseStore) VerifyIntegrity() error { return b.s.VerifyTree() }

func (b *baseStore) SetMeasuring(on bool) { b.enc.SetMeasuring(on) }

func (b *baseStore) ResetStats() { b.enc.ResetStats() }

func (b *baseStore) Stats() Stats {
	st := baseStats(b.scheme, b.enc)
	st.Keys = b.s.Keys()
	b.g.fill(&st)
	return st
}

func baseStats(scheme Scheme, enc *sgx.Enclave) Stats {
	es := enc.Stats()
	return Stats{
		Scheme:       scheme,
		SimCycles:    es.Cycles,
		SimSeconds:   enc.Seconds(),
		PageSwaps:    es.PageSwaps,
		Ecalls:       es.Ecalls,
		Ocalls:       es.Ocalls,
		MACs:         es.MACs,
		CTROps:       es.CTROps,
		Batches:      es.Batches,
		BatchedKeys:  es.BatchedOps,
		EPCUsedBytes: enc.EPCUsedBytes(),
	}
}

// Ranger is implemented by stores whose index keeps keys ordered and can
// serve verified range scans (currently AriaBPTree).
type Ranger interface {
	// Scan visits every pair with start <= key < end (nil end =
	// unbounded) in key order, stopping early when fn returns false.
	// The slices passed to fn are only valid during the call.
	Scan(start, end []byte, fn func(key, value []byte) bool) error
}

// Scan implements Ranger for engine-backed stores; non-ordered indexes
// return ErrNoScan. Integrity failures mid-scan are counted by the guard
// but cannot be attributed to one key, so nothing is quarantined.
func (c *coreStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	err := c.e.Scan(start, end, fn)
	if errors.Is(err, core.ErrNoScan) {
		return ErrNoScan
	}
	return c.g.observe(nil, c.mapErr(err))
}

// ---- fault injection -------------------------------------------------------------

// Corrupter is implemented by stores whose untrusted memory can be modified
// in place, emulating a malicious host. It exists for security
// demonstrations and tests; enclave (EPC) state is never reachable.
type Corrupter interface {
	// UntrustedSize returns the size of the untrusted arena in bytes.
	UntrustedSize() int
	// FlipUntrustedByte XORs one byte of untrusted memory with mask,
	// returning false if the offset is out of range.
	FlipUntrustedByte(offset int, mask byte) bool
	// SnapshotUntrusted copies the untrusted arena (for replay attacks).
	SnapshotUntrusted() []byte
	// RestoreUntrusted overwrites the untrusted arena with a snapshot
	// taken earlier (a wholesale replay attack).
	RestoreUntrusted(snap []byte)
}

func (c *coreStore) UntrustedSize() int { return c.enc.UntrustedUsedBytes() }

func (c *coreStore) FlipUntrustedByte(offset int, mask byte) bool {
	if offset < 0 || offset >= c.enc.UntrustedUsedBytes() {
		return false
	}
	c.enc.UBytesRaw(sgx.UPtr(offset), 1)[0] ^= mask
	return true
}

func (c *coreStore) SnapshotUntrusted() []byte {
	n := c.enc.UntrustedUsedBytes()
	return append([]byte(nil), c.enc.UBytesRaw(sgx.UPtr(0), n)...)
}

func (c *coreStore) RestoreUntrusted(snap []byte) {
	n := c.enc.UntrustedUsedBytes()
	if len(snap) < n {
		n = len(snap)
	}
	copy(c.enc.UBytesRaw(sgx.UPtr(0), n), snap[:n])
}

func (s *shieldStore) UntrustedSize() int { return s.enc.UntrustedUsedBytes() }

func (s *shieldStore) FlipUntrustedByte(offset int, mask byte) bool {
	if offset < 0 || offset >= s.enc.UntrustedUsedBytes() {
		return false
	}
	s.enc.UBytesRaw(sgx.UPtr(offset), 1)[0] ^= mask
	return true
}

func (s *shieldStore) SnapshotUntrusted() []byte {
	n := s.enc.UntrustedUsedBytes()
	return append([]byte(nil), s.enc.UBytesRaw(sgx.UPtr(0), n)...)
}

func (s *shieldStore) RestoreUntrusted(snap []byte) {
	n := s.enc.UntrustedUsedBytes()
	if len(snap) < n {
		n = len(snap)
	}
	copy(s.enc.UBytesRaw(sgx.UPtr(0), n), snap[:n])
}

// EdgeCaller is implemented by stores backed by the simulated enclave; each
// call charges one ECALL (enclave entry). Networked frontends (kvnet) call
// it per request, modelling the edge-call cost a real deployment pays when
// requests originate outside the enclave.
type EdgeCaller interface {
	// ChargeEcall charges the simulated enclave one ECALL entry cost.
	ChargeEcall()
}

func (c *coreStore) ChargeEcall() { c.enc.Ecall() }

func (s *shieldStore) ChargeEcall() { s.enc.Ecall() }

func (b *baseStore) ChargeEcall() { b.enc.Ecall() }
