package wal

// Segment streaming for replication. A sealed WAL segment is already a
// self-verifying byte stream — records frame themselves (length +
// complement header), authenticate themselves (chained CMACs from the
// segment's first sequence number), and torn tails are decidable by
// construction. Replication therefore ships the sealed bytes verbatim:
// the primary reads framed records off its segment files without
// unsealing them (SegmentReader), and the replica verifies them with
// its own same-seed Sealer exactly as recovery would (StreamVerifier).
// The untrusted network is trusted precisely as much as the untrusted
// disk — not at all.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/ariakv/aria/internal/seal"
)

// SegmentInfo describes one on-disk WAL segment file: its path and the
// sequence number of its first record (encoded in the file name).
type SegmentInfo struct {
	// Path is the segment file's path.
	Path string
	// FirstSeq is the sequence number of the segment's first record.
	FirstSeq uint64
}

// Segments lists dir's WAL segment files in ascending FirstSeq order.
// A missing directory lists as empty, not as an error.
func Segments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		var first uint64
		if e.Type().IsRegular() && parseSegName(e.Name(), &first) {
			segs = append(segs, SegmentInfo{Path: filepath.Join(dir, e.Name()), FirstSeq: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
	return segs, nil
}

// SnapshotInfo describes one snapshot file: its path and the sequence
// number it covers (encoded in the file name).
type SnapshotInfo struct {
	// Path is the snapshot file's path.
	Path string
	// Covered is the highest WAL sequence number the snapshot covers.
	Covered uint64
}

// ListSnapshots lists dir's snapshot files, newest (highest covered
// sequence) first. A missing directory lists as empty, not as an error.
func ListSnapshots(dir string) ([]SnapshotInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var snaps []SnapshotInfo
	for _, e := range entries {
		var covered uint64
		if e.Type().IsRegular() && parseSnapName(e.Name(), &covered) {
			snaps = append(snaps, SnapshotInfo{Path: filepath.Join(dir, e.Name()), Covered: covered})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Covered > snaps[j].Covered })
	return snaps, nil
}

// SegmentReader incrementally reads framed sealed records off one
// segment file without unsealing them — the publisher's view of a
// segment it is streaming to subscribers. Next tolerates an incomplete
// tail (a record the writer is still appending, or a torn tail) by
// returning io.EOF rather than an error: the reader keeps its offset,
// and a later Next picks up the record once the remaining bytes land.
// Only a defect a crash cannot produce — a broken length/complement
// header pair or an out-of-range length — returns ErrTampered.
type SegmentReader struct {
	f   *os.File
	off int64
}

// OpenSegment opens a segment file for incremental record reads.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	return &SegmentReader{f: f}, nil
}

// Offset returns the file offset where the next record read starts.
func (r *SegmentReader) Offset() int64 { return r.off }

// Next returns the next framed record's sealed bytes (header stripped).
// io.EOF means no complete record is available at the current offset —
// a clean end, or a tail still being written; the offset is unchanged,
// so Next can be retried after the writer makes progress.
func (r *SegmentReader) Next() ([]byte, error) {
	var hdr [headerBytes]byte
	n, err := r.f.ReadAt(hdr[:], r.off)
	if n < headerBytes {
		if err == nil || errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: read segment header: %w", err)
	}
	length := le32(hdr[:4])
	check := le32(hdr[4:8])
	if check != ^length {
		return nil, fmt.Errorf("%w: segment record header check mismatch at offset %d", ErrTampered, r.off)
	}
	if length < seal.Overhead || length > maxRecordBytes {
		return nil, fmt.Errorf("%w: segment record length %d out of range at offset %d", ErrTampered, length, r.off)
	}
	rec := make([]byte, length)
	n, err = r.f.ReadAt(rec, r.off+headerBytes)
	if n < int(length) {
		if err == nil || errors.Is(err, io.EOF) {
			return nil, io.EOF // body still in flight (or torn)
		}
		return nil, fmt.Errorf("wal: read segment record: %w", err)
	}
	r.off += headerBytes + int64(length)
	return rec, nil
}

// Close closes the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// le32 reads a little-endian uint32 (avoids importing encoding/binary
// twice under different names in this file's hot loop).
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// StreamVerifier authenticates a stream of sealed WAL records arriving
// over replication, holding the same per-segment chain state Recover
// derives from the files. StartSegment resets the chain to a segment
// boundary; Verify then checks each record against the running chain
// and enforces sequence continuity, so a reordered, spliced, replayed,
// or bit-flipped stream fails at the first bad record — the network
// gets no more trust than the disk.
type StreamVerifier struct {
	s       *seal.Sealer
	chain   seal.Chain
	want    uint64
	started bool
}

// NewStreamVerifier returns a verifier for records sealed by any
// sealing session under the same seed (the shared enclave identity).
func NewStreamVerifier(s *seal.Sealer) *StreamVerifier {
	return &StreamVerifier{s: s}
}

// StartSegment resets the verifier to the start of a segment whose
// first record carries firstSeq, exactly as Recover does per file.
func (v *StreamVerifier) StartSegment(firstSeq uint64) {
	v.chain = v.s.ChainInit(chainLabel, firstSeq)
	v.want = firstSeq
	v.started = true
}

// NextSeq returns the sequence number the next verified record must
// carry (0 before the first StartSegment).
func (v *StreamVerifier) NextSeq() uint64 { return v.want }

// Verify authenticates one sealed record against the running chain and
// returns its sequence number and decrypted payload. Any defect —
// verification outside a segment, a MAC failure, a sequence
// discontinuity — returns ErrTampered.
func (v *StreamVerifier) Verify(rec []byte) (uint64, []byte, error) {
	if !v.started {
		return 0, nil, fmt.Errorf("%w: record received before a segment start", ErrTampered)
	}
	seq, payload, next, err := v.s.Open(saltRecords, v.chain, rec)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: streamed record failed authentication: %v", ErrTampered, err)
	}
	if seq != v.want {
		return 0, nil, fmt.Errorf("%w: streamed sequence %d where %d expected", ErrTampered, seq, v.want)
	}
	v.chain = next
	v.want = seq + 1
	return seq, payload, nil
}
