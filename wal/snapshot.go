package wal

// Sealed snapshots. A snapshot is a point-in-time copy of the whole
// keyspace covering every WAL record up to its CoveredSeq; loading the
// newest valid snapshot and replaying the records above CoveredSeq
// reconstructs the store. Snapshots are written to a temporary file and
// renamed into place, so a crash mid-checkpoint leaves at most a stale
// .tmp file — a renamed snapshot is always complete. Inside, a snapshot
// is a mini record lineage sealed exactly like the log (its own salt
// and chain label, sequence numbers 0..n+1): a header record, one
// record per pair, and a trailer record whose presence proves the file
// was not cut short. Any defect in a renamed snapshot is therefore
// tampering, never a crash artifact.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ariakv/aria/internal/seal"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".seal"
	tmpSuffix  = ".tmp"
	// saltSnapshot is the keystream domain for snapshot records
	// ("ariaSNAP"), distinct from saltRecords. Each snapshot file
	// additionally XORs its covered sequence number into the salt
	// (snapSalt), so two snapshots — whose internal sequence numbers
	// both start at 0 — never share a counter block, on top of the
	// per-session epoch internal/seal already folds in.
	saltSnapshot = 0x61726961534e4150
	// snapChainLabel seeds a snapshot's MAC chain together with its
	// covered sequence number ("-v2": see chainLabel).
	snapChainLabel = "aria-snapshot-v2"
	// maxSnapshotKey bounds a snapshot pair's key to what the uint16
	// length prefix can frame; WriteSnapshot rejects longer keys so the
	// prefix can never wrap and silently re-split key and value.
	maxSnapshotKey = 1<<16 - 1
	// snapMagic opens the header record.
	snapMagic = "ariasnap1"
)

// Pair is one key/value pair carried by a snapshot.
type Pair struct {
	// Key is the pair's key.
	Key []byte
	// Value is the pair's value.
	Value []byte
}

// SnapshotName returns the file name of a snapshot covering seq.
func SnapshotName(coveredSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, coveredSeq, snapSuffix)
}

// parseSnapName extracts the covered sequence number from a snapshot
// file name.
func parseSnapName(name string, covered *uint64) bool {
	if len(name) != len(snapPrefix)+20+len(snapSuffix) ||
		name[:len(snapPrefix)] != snapPrefix || name[len(name)-len(snapSuffix):] != snapSuffix {
		return false
	}
	var v uint64
	for _, c := range name[len(snapPrefix) : len(name)-len(snapSuffix)] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*covered = v
	return true
}

// Snapshots lists the snapshot files in dir, newest (highest covered
// sequence) first.
func Snapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	type snap struct {
		path    string
		covered uint64
	}
	var snaps []snap
	for _, e := range entries {
		var covered uint64
		if e.Type().IsRegular() && parseSnapName(e.Name(), &covered) {
			snaps = append(snaps, snap{filepath.Join(dir, e.Name()), covered})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].covered > snaps[j].covered })
	paths := make([]string, len(snaps))
	for i, s := range snaps {
		paths[i] = s.path
	}
	return paths, nil
}

// snapSalt is the keystream domain of one snapshot file: the snapshot
// base salt distinguished per covered sequence number.
func snapSalt(coveredSeq uint64) uint64 { return saltSnapshot ^ coveredSeq }

// WriteSnapshot seals pairs into an atomic snapshot covering
// coveredSeq: written to a temporary file, fsynced, renamed into place,
// directory fsynced. It returns the snapshot's size in bytes. Keys
// longer than 65535 bytes do not fit the pair framing and are rejected.
func WriteSnapshot(dir string, s *seal.Sealer, coveredSeq uint64, pairs []Pair) (int64, error) {
	for _, p := range pairs {
		if len(p.Key) > maxSnapshotKey {
			return 0, fmt.Errorf("wal: snapshot key of %d bytes exceeds the %d-byte framing limit", len(p.Key), maxSnapshotKey)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("wal: create dir: %w", err)
	}
	final := filepath.Join(dir, SnapshotName(coveredSeq))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	chain := s.ChainInit(snapChainLabel, coveredSeq)
	seq := uint64(0)
	var written int64
	emit := func(payload []byte) error {
		rec, next := s.Seal(seq, snapSalt(coveredSeq), chain, payload)
		var hdr [headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], ^uint32(len(rec)))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(rec); err != nil {
			return err
		}
		written += int64(headerBytes + len(rec))
		chain = next
		seq++
		return nil
	}
	hdr := make([]byte, len(snapMagic)+16)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic):], coveredSeq)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic)+8:], uint64(len(pairs)))
	if err := emit(hdr); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: write snapshot: %w", err)
	}
	for _, p := range pairs {
		body := make([]byte, 2+len(p.Key)+len(p.Value))
		binary.LittleEndian.PutUint16(body[:2], uint16(len(p.Key)))
		copy(body[2:], p.Key)
		copy(body[2+len(p.Key):], p.Value)
		if err := emit(body); err != nil {
			f.Close()
			return 0, fmt.Errorf("wal: write snapshot: %w", err)
		}
	}
	if err := emit([]byte("end")); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: write snapshot trailer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("wal: publish snapshot: %w", err)
	}
	syncDir(dir)
	return written, nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// platforms where directories cannot be fsynced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// ReadSnapshot verifies and decrypts one snapshot file, returning the
// covered sequence number and the pairs. Every defect — a bad MAC, a
// broken header pair, a wrong count, a missing trailer — returns
// ErrTampered: renames are atomic, so an incomplete renamed snapshot
// cannot be a crash artifact.
func ReadSnapshot(path string, s *seal.Sealer) (uint64, []Pair, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: read snapshot: %w", err)
	}
	var declared uint64
	if !parseSnapName(filepath.Base(path), &declared) {
		return 0, nil, fmt.Errorf("%w: snapshot %s: malformed name", ErrTampered, filepath.Base(path))
	}
	chain := s.ChainInit(snapChainLabel, declared)
	seq := uint64(0)
	off := int64(0)
	next := func() ([]byte, error) {
		rest := data[off:]
		if len(rest) < headerBytes {
			return nil, fmt.Errorf("%w: snapshot %s: cut short at offset %d", ErrTampered, filepath.Base(path), off)
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		check := binary.LittleEndian.Uint32(rest[4:8])
		if check != ^length || length < seal.Overhead || length > maxRecordBytes ||
			int64(len(rest)) < headerBytes+int64(length) {
			return nil, fmt.Errorf("%w: snapshot %s: bad record framing at offset %d", ErrTampered, filepath.Base(path), off)
		}
		rec := rest[headerBytes : headerBytes+int64(length)]
		gotSeq, payload, nc, err := s.Open(snapSalt(declared), chain, rec)
		if err != nil || gotSeq != seq {
			return nil, fmt.Errorf("%w: snapshot %s: record %d failed authentication", ErrTampered, filepath.Base(path), seq)
		}
		chain = nc
		seq++
		off += headerBytes + int64(length)
		return payload, nil
	}
	hdr, err := next()
	if err != nil {
		return 0, nil, err
	}
	if len(hdr) != len(snapMagic)+16 || !strings.HasPrefix(string(hdr), snapMagic) {
		return 0, nil, fmt.Errorf("%w: snapshot %s: bad header", ErrTampered, filepath.Base(path))
	}
	covered := binary.LittleEndian.Uint64(hdr[len(snapMagic):])
	count := binary.LittleEndian.Uint64(hdr[len(snapMagic)+8:])
	if covered != declared {
		return 0, nil, fmt.Errorf("%w: snapshot %s: header covers seq %d but name declares %d", ErrTampered, filepath.Base(path), covered, declared)
	}
	pairs := make([]Pair, 0, count)
	for i := uint64(0); i < count; i++ {
		body, err := next()
		if err != nil {
			return 0, nil, err
		}
		if len(body) < 2 {
			return 0, nil, fmt.Errorf("%w: snapshot %s: short pair record", ErrTampered, filepath.Base(path))
		}
		klen := int(binary.LittleEndian.Uint16(body[:2]))
		if len(body) < 2+klen {
			return 0, nil, fmt.Errorf("%w: snapshot %s: pair key overruns record", ErrTampered, filepath.Base(path))
		}
		pairs = append(pairs, Pair{Key: body[2 : 2+klen], Value: body[2+klen:]})
	}
	trailer, err := next()
	if err != nil {
		return 0, nil, err
	}
	if string(trailer) != "end" || off != int64(len(data)) {
		return 0, nil, fmt.Errorf("%w: snapshot %s: bad trailer", ErrTampered, filepath.Base(path))
	}
	return covered, pairs, nil
}

// PruneSnapshots removes snapshots older than keep and any leftover
// temporary files, called after a checkpoint publishes a new snapshot.
func PruneSnapshots(dir string, keep uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		var covered uint64
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("wal: remove stale temp: %w", err)
			}
		case parseSnapName(name, &covered) && covered < keep:
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("wal: remove old snapshot: %w", err)
			}
		}
	}
	return nil
}
