package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/ariakv/aria/internal/seal"
)

// fuzzSegment builds a valid two-record segment under the fuzz seed
// sealer, used to seed the corpus with structurally correct inputs the
// mutator can perturb.
func fuzzSegment() []byte {
	s := seal.New(99)
	chain := s.ChainInit(chainLabel, 1)
	var out []byte
	for i, p := range [][]byte{[]byte("fuzz-record-one"), []byte("two")} {
		rec, next := s.Seal(uint64(1+i), saltRecords, chain, p)
		var hdr [headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], ^uint32(len(rec)))
		out = append(out, hdr[:]...)
		out = append(out, rec...)
		chain = next
	}
	return out
}

// FuzzWALRecord feeds arbitrary bytes to the segment parser as the
// contents of a recovered segment file. The parser must never panic,
// must classify every input as clean, torn, or tampered, and must keep
// the torn/tampered distinction sound: an input that is a strict prefix
// of valid records may be torn but never tampered.
func FuzzWALRecord(f *testing.F) {
	valid := fuzzSegment()
	f.Add([]byte{})
	f.Add([]byte("go test fuzz"))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:headerBytes-3])
	corrupt := append([]byte(nil), valid...)
	corrupt[headerBytes+3] ^= 0x80
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(Options{Dir: dir, Sealer: seal.New(99)})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		var replayed uint64
		info, err := l.Recover(0, func(seq uint64, payload []byte) error {
			replayed++
			return nil
		})
		l.Close()
		if err != nil {
			if !errors.Is(err, ErrTampered) {
				t.Fatalf("recover returned non-tamper error: %v", err)
			}
			return
		}
		if replayed != info.Replayed || info.Verified != info.Replayed {
			t.Fatalf("inconsistent recovery accounting: replayed %d, info %+v", replayed, info)
		}
		// Whatever survived recovery must be a clean log: a second
		// recovery replays the same records with no torn tail.
		l2, err := Open(Options{Dir: dir, Sealer: seal.New(99)})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		info2, err := l2.Recover(0, nil)
		l2.Close()
		if err != nil {
			t.Fatalf("re-recover of cleaned log failed: %v", err)
		}
		if info2.Torn || info2.Replayed != info.Replayed {
			t.Fatalf("cleaned log unstable: first %+v, second %+v", info, info2)
		}
	})
}
