// Package wal implements the sealed write-ahead log and snapshot files
// of Aria's durability subsystem (DESIGN.md §10).
//
// Everything the package writes lives outside the enclave's trust
// boundary, so every record is sealed (AES-128-CTR encrypted and
// CMAC-authenticated, internal/seal) before it reaches the host file
// system, and the MACs are chained record-to-record: a log that has
// been reordered, spliced, replayed, or bit-flipped fails verification
// at the first bad record. A log that was merely cut short by a crash
// — a torn tail — is distinguished from tampering by construction (see
// the framing below) and recovery stops cleanly at the last complete
// record.
//
// On-disk framing of one log record:
//
//	length       uint32  little endian, bytes following this header
//	lengthCheck  uint32  ^length (ones' complement)
//	sealed record        seq (8) || epoch (8) || ciphertext || CMAC (16)
//
// The redundant lengthCheck is what separates the two failure modes: a
// crash can only shorten an append-only file, so recovery sees either
// fewer than 8 header bytes or fewer body bytes than a *valid* header
// declares — both torn. A flipped bit in the header breaks the
// length/lengthCheck pair, and a flipped bit anywhere else breaks the
// CMAC — both tampering, routed to the store's IntegrityPolicy.
//
// The per-record epoch (internal/seal) is what makes truncation-then-
// reappend safe against a host that keeps copies: recovery rewinds the
// next sequence number when it drops a torn tail or salvages a
// tampered suffix, but the re-sealed record is produced by a new
// sealing session whose fresh random epoch is folded into the CTR
// counter block — a re-used sequence number never re-uses keystream,
// so the host cannot XOR pre- and post-crash ciphertexts into
// plaintext.
//
// The package is deliberately free of simulator dependencies; the
// durable store wrapper in the root package charges the enclave
// simulator for seal work and boundary crossings (sgx.SealOut/SealIn).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/ariakv/aria/internal/seal"
)

const (
	// headerBytes is the per-record framing overhead: length + lengthCheck.
	headerBytes = 8
	// maxRecordBytes bounds a single record's declared body length; a
	// valid-looking header announcing more than this is tampering, not a
	// huge record.
	maxRecordBytes = 1 << 26
	// segPrefix and segSuffix frame WAL segment file names:
	// wal-<firstSeq, 20 digits>.log.
	segPrefix = "wal-"
	segSuffix = ".log"
	// saltRecords is the keystream domain for WAL records ("ariaWLOG"),
	// distinct from saltSnapshot so a WAL record and a snapshot record
	// with equal sequence numbers never share a counter block.
	saltRecords = 0x61726961574c4f47
	// chainLabel seeds each segment's MAC chain together with the
	// segment's first sequence number ("-v2": the sealed-record format
	// gained the epoch field, and bumping the label makes v1 records
	// fail verification outright instead of decrypting to garbage).
	chainLabel = "aria-wal-segment-v2"
)

// ErrTampered reports that the log or a snapshot failed verification in
// a way a crash cannot produce: a broken header pair, a MAC failure, a
// sequence gap, or a missing interior segment. It wraps seal.ErrTampered
// where a record MAC was involved.
var ErrTampered = errors.New("wal: log failed verification (tampering detected)")

// ErrNotRecovered reports an Append or Rotate on a Log whose Recover
// has not completed: the append position and chain state are unknown
// until the existing records have been verified.
var ErrNotRecovered = errors.New("wal: log not recovered yet")

// FsyncPolicy selects when the log issues fsync on the active segment.
type FsyncPolicy int

const (
	// FsyncBatch (the default) issues one fsync per Append call, so a
	// batched write (MPut/MDelete) is group-committed: one segment
	// append, one fsync, regardless of batch size.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways issues one write+fsync per record, the strictest
	// (and slowest) durability setting.
	FsyncAlways
	// FsyncNever leaves flushing to the OS entirely; a crash can lose
	// recent records but never corrupts the committed prefix.
	FsyncNever
)

// String returns "batch", "always", or "never".
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "batch"
	}
}

// ParseFsyncPolicy maps "batch", "always", and "never" to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want batch, always, or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment and snapshot files. It
	// is created if missing.
	Dir string
	// Sealer seals and opens records. Required.
	Sealer *seal.Sealer
	// Fsync selects the flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// SegmentBytes rotates the active segment once it exceeds this
	// size (default 4 MB).
	SegmentBytes int
}

// Stats counts the log's I/O since Open.
type Stats struct {
	// Appends counts Append calls (group commits).
	Appends uint64
	// Records counts records sealed into the log.
	Records uint64
	// Bytes counts sealed bytes written, framing included.
	Bytes uint64
	// Fsyncs counts fsync calls issued by the policy.
	Fsyncs uint64
}

// AppendResult reports what one Append wrote, so the caller can charge
// the enclave simulator for the boundary crossing and the fsyncs.
type AppendResult struct {
	// Bytes is the framed size of the group written to the segment.
	Bytes int
	// Fsyncs is how many fsync calls the policy issued.
	Fsyncs int
	// FirstSeq and LastSeq bound the sequence numbers assigned.
	FirstSeq, LastSeq uint64
}

// RecoverInfo reports what Recover found.
type RecoverInfo struct {
	// Verified counts records that passed verification (including ones
	// at or below afterSeq that were skipped, not replayed).
	Verified uint64
	// Replayed counts records handed to the replay function.
	Replayed uint64
	// TornBytes is the size of the torn tail discarded from the active
	// segment (0 when the log ended cleanly).
	TornBytes int64
	// Torn reports whether a torn tail was found (a crash artifact,
	// not tampering).
	Torn bool
}

// segment is one on-disk log file; firstSeq is encoded in its name.
type segment struct {
	path     string
	firstSeq uint64
}

// Log is a sealed append-only write-ahead log over one directory.
// It is not safe for concurrent use; the durable store wrapper
// serializes access.
type Log struct {
	opts      Options
	segs      []segment
	active    *os.File
	activeLen int64
	chain     seal.Chain
	nextSeq   uint64
	recovered bool
	stats     Stats

	// tamper recovery state consumed by TruncateTail: the segment
	// index and offset where the valid prefix ends when Recover
	// returned ErrTampered. badSeg == -1 means no tamper point;
	// badSeg == dropAll means nothing is salvageable (structural
	// tamper before any record verified) and the lineage restarts at
	// salvageStart.
	badSeg       int
	badOff       int64
	salvageStart uint64
}

// dropAll marks a tamper point where no prefix is salvageable.
const dropAll = -2

// Open scans dir for segment files and returns a Log positioned for
// Recover. The directory is created if missing. No record is read yet.
func Open(opts Options) (*Log, error) {
	if opts.Sealer == nil {
		return nil, errors.New("wal: Options.Sealer is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	l := &Log{opts: opts, badSeg: -1}
	for _, e := range entries {
		name := e.Name()
		var first uint64
		if !e.Type().IsRegular() || !parseSegName(name, &first) {
			continue
		}
		l.segs = append(l.segs, segment{path: filepath.Join(opts.Dir, name), firstSeq: first})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstSeq < l.segs[j].firstSeq })
	return l, nil
}

// parseSegName extracts the first sequence number from a segment file
// name, reporting whether the name is a well-formed segment name.
func parseSegName(name string, first *uint64) bool {
	if len(name) != len(segPrefix)+20+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return false
	}
	var v uint64
	for _, c := range name[len(segPrefix) : len(name)-len(segSuffix)] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*first = v
	return true
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// Recover verifies every segment in order, replaying records with
// sequence numbers above afterSeq through fn. A torn tail on the final
// segment is truncated away and reported in RecoverInfo; any other
// defect returns ErrTampered (use TruncateTail to salvage the valid
// prefix under a Quarantine policy). After a successful Recover the log
// accepts Appends continuing the verified chain.
func (l *Log) Recover(afterSeq uint64, fn func(seq uint64, payload []byte) error) (RecoverInfo, error) {
	var info RecoverInfo
	if l.recovered {
		return info, errors.New("wal: Recover called twice")
	}
	l.salvageStart = afterSeq + 1
	if len(l.segs) == 0 {
		// Fresh directory: start a new lineage right after the snapshot.
		if err := l.startSegment(afterSeq + 1); err != nil {
			return info, err
		}
		l.recovered = true
		return info, nil
	}
	if first := l.segs[0].firstSeq; first > afterSeq+1 {
		// The records between the snapshot and the oldest segment are
		// gone: history was removed, which a crash cannot do. Nothing
		// after the gap can be safely replayed.
		l.badSeg = dropAll
		return info, fmt.Errorf("%w: oldest segment starts at seq %d but snapshot covers only %d", ErrTampered, first, afterSeq)
	}
	nextSeq := uint64(0)
	prevEnd := int64(0)
	for i, s := range l.segs {
		if i > 0 && s.firstSeq != nextSeq {
			// A missing interior range: the prefix through segment i-1
			// is intact, everything from segment i on is untrusted.
			l.badSeg, l.badOff = i-1, prevEnd
			return info, fmt.Errorf("%w: segment %s does not continue at seq %d", ErrTampered, filepath.Base(s.path), nextSeq)
		}
		last := i == len(l.segs)-1
		end, chain, next, err := l.verifySegment(i, afterSeq, last, fn, &info)
		if err != nil {
			return info, err
		}
		nextSeq = next
		prevEnd = end
		if last {
			l.chain = chain
			l.activeLen = end
			l.nextSeq = next
		}
	}
	// Reopen the final segment for appending, dropping any torn tail so
	// the append invariant (file = framed records) holds again.
	tail := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return info, fmt.Errorf("wal: reopen tail segment: %w", err)
	}
	if info.Torn {
		if err := f.Truncate(l.activeLen); err != nil {
			f.Close()
			return info, fmt.Errorf("wal: drop torn tail: %w", err)
		}
	}
	if _, err := f.Seek(l.activeLen, 0); err != nil {
		f.Close()
		return info, fmt.Errorf("wal: seek tail segment: %w", err)
	}
	l.active = f
	l.recovered = true
	return info, nil
}

// verifySegment walks one segment file, verifying the MAC chain and
// sequence continuity, replaying records above afterSeq. It returns the
// offset where valid records end, the chain state there, and the next
// expected sequence number. Torn tails are only legal on the last
// segment; on tamper it records the salvage point for TruncateTail.
func (l *Log) verifySegment(idx int, afterSeq uint64, last bool, fn func(uint64, []byte) error, info *RecoverInfo) (int64, seal.Chain, uint64, error) {
	s := l.segs[idx]
	data, err := os.ReadFile(s.path)
	if err != nil {
		return 0, seal.Chain{}, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	chain := l.opts.Sealer.ChainInit(chainLabel, s.firstSeq)
	want := s.firstSeq
	off := int64(0)
	tamper := func(format string, args ...any) (int64, seal.Chain, uint64, error) {
		l.badSeg, l.badOff = idx, off
		return off, chain, want, fmt.Errorf("%w: segment %s offset %d: %s", ErrTampered, filepath.Base(s.path), off, fmt.Sprintf(format, args...))
	}
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < headerBytes {
			// Fewer bytes than a header: only a cut can leave this.
			if !last {
				return tamper("segment cut short mid-lineage")
			}
			info.Torn, info.TornBytes = true, int64(len(rest))
			break
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		check := binary.LittleEndian.Uint32(rest[4:8])
		if check != ^length {
			return tamper("record header check mismatch")
		}
		if length < seal.Overhead || length > maxRecordBytes {
			return tamper("record length %d out of range", length)
		}
		if int64(len(rest)) < headerBytes+int64(length) {
			// Valid header, short body: torn mid-record.
			if !last {
				return tamper("segment cut short mid-lineage")
			}
			info.Torn, info.TornBytes = true, int64(len(rest))
			break
		}
		rec := rest[headerBytes : headerBytes+int64(length)]
		seq, payload, next, err := l.opts.Sealer.Open(saltRecords, chain, rec)
		if err != nil {
			return tamper("%v", err)
		}
		if seq != want {
			return tamper("sequence %d where %d expected", seq, want)
		}
		info.Verified++
		if seq > afterSeq {
			if fn != nil {
				if err := fn(seq, payload); err != nil {
					return off, chain, want, err
				}
			}
			info.Replayed++
		}
		chain = next
		want = seq + 1
		off += headerBytes + int64(length)
	}
	return off, chain, want, nil
}

// TruncateTail salvages the valid prefix after Recover returned
// ErrTampered: the tampered suffix of the failing segment and every
// later segment are removed, and the log becomes appendable again. This
// is the Quarantine path — availability over forensics; under FailStop
// the log is left untouched as evidence.
func (l *Log) TruncateTail() error {
	if l.recovered {
		return errors.New("wal: TruncateTail on a recovered log")
	}
	if l.badSeg == dropAll {
		// Structural tamper before any record verified: no prefix is
		// salvageable, so the lineage restarts empty right after the
		// snapshot.
		for _, s := range l.segs {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: remove unsalvageable segment: %w", err)
			}
		}
		l.segs = nil
		if err := l.startSegment(l.salvageStart); err != nil {
			return err
		}
		l.badSeg = -1
		l.recovered = true
		return nil
	}
	if l.badSeg < 0 {
		return errors.New("wal: TruncateTail without a recorded tamper point")
	}
	for _, s := range l.segs[l.badSeg+1:] {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: remove tampered segment: %w", err)
		}
	}
	l.segs = l.segs[:l.badSeg+1]
	tail := l.segs[l.badSeg]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen salvaged segment: %w", err)
	}
	if err := f.Truncate(l.badOff); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate tampered suffix: %w", err)
	}
	if _, err := f.Seek(l.badOff, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: seek salvaged segment: %w", err)
	}
	// Re-derive the append state by re-verifying the salvaged prefix.
	chain := l.opts.Sealer.ChainInit(chainLabel, tail.firstSeq)
	want := tail.firstSeq
	data, err := os.ReadFile(tail.path)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: reread salvaged segment: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		length := binary.LittleEndian.Uint32(data[off : off+4])
		rec := data[off+headerBytes : off+headerBytes+int64(length)]
		_, _, next, err := l.opts.Sealer.Open(saltRecords, chain, rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: salvaged prefix no longer verifies: %w", err)
		}
		chain = next
		want++
		off += headerBytes + int64(length)
	}
	l.active = f
	l.activeLen = l.badOff
	l.chain = chain
	l.nextSeq = want
	l.badSeg = -1
	l.recovered = true
	return nil
}

// startSegment creates a fresh active segment whose first record will
// carry firstSeq, resetting the MAC chain to the segment's initial
// value.
func (l *Log) startSegment(firstSeq uint64) error {
	path := filepath.Join(l.opts.Dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq})
	l.active = f
	l.activeLen = 0
	l.chain = l.opts.Sealer.ChainInit(chainLabel, firstSeq)
	l.nextSeq = firstSeq
	return nil
}

// NextSeq returns the sequence number the next appended record will
// carry.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Append seals the payloads as consecutive records and writes them as
// one group to the active segment, flushing per the fsync policy:
// FsyncBatch commits the whole group with a single fsync (this is the
// group commit MPut/MDelete ride on), FsyncAlways writes and syncs each
// record, FsyncNever just writes. The segment is rotated first if it
// has outgrown Options.SegmentBytes, so a group never straddles
// segments.
func (l *Log) Append(payloads ...[]byte) (AppendResult, error) {
	var res AppendResult
	if !l.recovered {
		return res, ErrNotRecovered
	}
	if len(payloads) == 0 {
		return res, nil
	}
	if l.activeLen >= int64(l.opts.SegmentBytes) {
		if err := l.Rotate(); err != nil {
			return res, err
		}
	}
	res.FirstSeq = l.nextSeq
	chain := l.chain
	// Seal every record first so a write error cannot leave the chain
	// state ahead of the file contents.
	frames := make([][]byte, len(payloads))
	seq := l.nextSeq
	for i, p := range payloads {
		frames[i], chain = l.frame(seq, chain, p)
		seq++
	}
	write := func(b []byte) error {
		n, err := l.active.Write(b)
		if err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		l.activeLen += int64(n)
		res.Bytes += n
		return nil
	}
	sync := func() error {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		res.Fsyncs++
		return nil
	}
	switch l.opts.Fsync {
	case FsyncAlways:
		for _, fr := range frames {
			if err := write(fr); err != nil {
				return res, err
			}
			if err := sync(); err != nil {
				return res, err
			}
		}
	default:
		var group []byte
		for _, fr := range frames {
			group = append(group, fr...)
		}
		if err := write(group); err != nil {
			return res, err
		}
		if l.opts.Fsync == FsyncBatch {
			if err := sync(); err != nil {
				return res, err
			}
		}
	}
	l.chain = chain
	l.nextSeq = seq
	res.LastSeq = seq - 1
	l.stats.Appends++
	l.stats.Records += uint64(len(payloads))
	l.stats.Bytes += uint64(res.Bytes)
	l.stats.Fsyncs += uint64(res.Fsyncs)
	return res, nil
}

// frame seals one payload and wraps it in the length/lengthCheck
// header, returning the framed bytes and the successor chain.
func (l *Log) frame(seq uint64, chain seal.Chain, payload []byte) ([]byte, seal.Chain) {
	rec, next := l.opts.Sealer.Seal(seq, saltRecords, chain, payload)
	framed := make([]byte, headerBytes+len(rec))
	binary.LittleEndian.PutUint32(framed[:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(framed[4:8], ^uint32(len(rec)))
	copy(framed[headerBytes:], rec)
	return framed, next
}

// Rotate closes the active segment (with a final fsync unless the
// policy is FsyncNever) and starts a new one at the next sequence
// number. The checkpointer rotates before snapshotting so the snapshot
// boundary aligns with a segment boundary.
func (l *Log) Rotate() error {
	if !l.recovered {
		return ErrNotRecovered
	}
	if l.activeLen == 0 {
		// The active segment holds no records, so its replacement would
		// carry the same first sequence number — the same file name.
		return nil
	}
	if l.opts.Fsync != FsyncNever {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync before rotate: %w", err)
		}
		l.stats.Fsyncs++
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.startSegment(l.nextSeq)
}

// TruncateThrough removes segments every record of which has sequence
// number at or below seq — the obsolete prefix a snapshot covering seq
// makes redundant. The active segment is never removed.
func (l *Log) TruncateThrough(seq uint64) error {
	if !l.recovered {
		return ErrNotRecovered
	}
	keep := l.segs[:0]
	for i, s := range l.segs {
		// A segment's records end where the next segment starts; the
		// last (active) segment is always kept.
		if i+1 < len(l.segs) && l.segs[i+1].firstSeq <= seq+1 {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: remove obsolete segment: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	return nil
}

// Sync flushes the active segment regardless of policy (used on drain).
func (l *Log) Sync() error {
	if !l.recovered {
		return ErrNotRecovered
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.stats.Fsyncs++
	return nil
}

// Stats returns the I/O counters since Open.
func (l *Log) Stats() Stats { return l.stats }

// Close closes the active segment file. Under FsyncNever pending bytes
// are flushed by the OS, not by Close.
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	return err
}
