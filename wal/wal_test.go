package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ariakv/aria/internal/seal"
)

func openLog(t *testing.T, dir string, policy FsyncPolicy, segBytes int) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, Sealer: seal.New(99), Fsync: policy, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func recoverAll(t *testing.T, l *Log, afterSeq uint64) ([][]byte, RecoverInfo) {
	t.Helper()
	var got [][]byte
	info, err := l.Recover(afterSeq, func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, info
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncBatch, FsyncAlways, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openLog(t, dir, policy, 1<<20)
			if _, err := l.Append([]byte("x")); !errors.Is(err, ErrNotRecovered) {
				t.Fatalf("append before recover: %v", err)
			}
			recoverAll(t, l, 0)
			var want [][]byte
			for i := 0; i < 10; i++ {
				p := []byte(fmt.Sprintf("record-%d", i))
				want = append(want, p)
				if _, err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := openLog(t, dir, policy, 1<<20)
			got, info := recoverAll(t, l2, 0)
			if info.Torn {
				t.Fatal("clean log reported torn")
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			// Appends continue the chain after recovery.
			if _, err := l2.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
		})
	}
}

func TestGroupCommitFsyncCounts(t *testing.T) {
	group := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	cases := []struct {
		policy FsyncPolicy
		want   int
	}{{FsyncBatch, 1}, {FsyncAlways, 3}, {FsyncNever, 0}}
	for _, c := range cases {
		t.Run(c.policy.String(), func(t *testing.T) {
			l := openLog(t, t.TempDir(), c.policy, 1<<20)
			recoverAll(t, l, 0)
			res, err := l.Append(group...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fsyncs != c.want {
				t.Fatalf("fsyncs = %d, want %d", res.Fsyncs, c.want)
			}
			if res.FirstSeq != 1 || res.LastSeq != 3 {
				t.Fatalf("seq range [%d,%d], want [1,3]", res.FirstSeq, res.LastSeq)
			}
			if st := l.Stats(); st.Appends != 1 || st.Records != 3 || st.Bytes != uint64(res.Bytes) {
				t.Fatalf("stats %+v inconsistent with result %+v", st, res)
			}
			l.Close()
		})
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncNever, 64) // tiny segments force rotation
	recoverAll(t, l, 0)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(l.segs))
	}
	// Truncating through the second segment's start leaves later ones.
	cut := l.segs[2].firstSeq - 1
	if err := l.TruncateThrough(cut); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openLog(t, dir, FsyncNever, 64)
	got, _ := recoverAll(t, l2, cut)
	if want := 20 - int(cut); len(got) != want {
		t.Fatalf("replayed %d records after truncation, want %d", len(got), want)
	}
	l2.Close()
}

func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	var sizes []int64
	total := int64(0)
	for i := 0; i < 5; i++ {
		res, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(res.Bytes)
		sizes = append(sizes, total)
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(pristine)); cut++ {
		if err := os.WriteFile(seg, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openLog(t, dir, FsyncBatch, 1<<20)
		got, info := recoverAll(t, l2, 0)
		// The recovered records must be exactly the committed prefix:
		// every record whose bytes fully fit under the cut.
		want := 0
		for _, s := range sizes {
			if s <= cut {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		boundary := cut == 0
		for _, s := range sizes {
			boundary = boundary || s == cut
		}
		if info.Torn == boundary {
			t.Fatalf("cut %d: torn=%v, want %v", cut, info.Torn, !boundary)
		}
		l2.Close()
	}
}

func TestFlippedByteIsTampering(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for off := range pristine {
		bad := append([]byte(nil), pristine...)
		bad[off] ^= 0x10
		if err := os.WriteFile(seg, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openLog(t, dir, FsyncBatch, 1<<20)
		_, err := l2.Recover(0, nil)
		if !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at offset %d: err = %v, want ErrTampered", off, err)
		}
		l2.Close()
	}
}

func TestTruncateTailSalvagesPrefix(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	var bound int64
	for i := 0; i < 4; i++ {
		res, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			bound += int64(res.Bytes)
		} else if i == 0 {
			bound = int64(res.Bytes)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[bound+headerBytes+2] ^= 0xFF // corrupt record 3's body
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, FsyncBatch, 1<<20)
	var replayed int
	_, err = l2.Recover(0, func(uint64, []byte) error { replayed++; return nil })
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
	if err := l2.TruncateTail(); err != nil {
		t.Fatal(err)
	}
	// The salvaged log accepts appends and replays only the prefix.
	if _, err := l2.Append([]byte("salvaged")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := openLog(t, dir, FsyncBatch, 1<<20)
	got, _ := recoverAll(t, l3, 0)
	if len(got) != 3 { // records 0, 1 (valid prefix) + "salvaged"
		t.Fatalf("replayed %d records after salvage, want 3", len(got))
	}
	if !bytes.Equal(got[2], []byte("salvaged")) {
		t.Fatalf("last record = %q, want %q", got[2], "salvaged")
	}
	l3.Close()
}

// TestTornReappendDoesNotReuseKeystream models the two-time-pad attack
// the epoch defends against: the host keeps a copy of the log, forces a
// truncation that is indistinguishable from a crash (cut mid-record),
// and watches recovery re-seal a different payload under the same
// sequence number. XORing the kept and re-sealed ciphertexts must not
// reveal the XOR of the plaintexts.
func TestTornReappendDoesNotReuseKeystream(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	p1 := bytes.Repeat([]byte{0xAA}, 64)
	if _, err := l.Append(p1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// The "crash": the record loses its final byte, so recovery drops it
	// and the next append re-issues sequence number 1.
	if err := os.WriteFile(seg, pristine[:len(pristine)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, FsyncBatch, 1<<20) // fresh sealer = fresh epoch
	if _, info := recoverAll(t, l2, 0); !info.Torn {
		t.Fatal("cut record not reported torn")
	}
	p2 := bytes.Repeat([]byte{0x55}, 64)
	if res, err := l2.Append(p2); err != nil || res.FirstSeq != 1 {
		t.Fatalf("re-append: res=%+v err=%v, want seq 1", res, err)
	}
	l2.Close()
	resealed, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Both records sit at the same offsets: header, then seq+epoch (16
	// bytes of seal prefix), then the 64 ciphertext bytes.
	ct1 := pristine[headerBytes+16 : headerBytes+16+len(p1)]
	ct2 := resealed[headerBytes+16 : headerBytes+16+len(p2)]
	reuse := true
	for i := range ct1 {
		if ct1[i]^ct2[i] != p1[i]^p2[i] {
			reuse = false
			break
		}
	}
	if reuse {
		t.Fatal("re-sealed record shares the dropped record's keystream (two-time pad)")
	}
}

// TestSnapshotsDoNotShareKeystream pins the snapshot-side counter-block
// separation: every snapshot's record sequence numbers start at 0, so
// two snapshots written by one session (same epoch) must be kept apart
// by the covered-seq fold in their salt.
func TestSnapshotsDoNotShareKeystream(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(7)
	pair := []Pair{{Key: []byte("k"), Value: bytes.Repeat([]byte{0xEE}, 48)}}
	if _, err := WriteSnapshot(dir, s, 1, pair); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, s, 2, pair); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir, SnapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, SnapshotName(2)))
	if err != nil {
		t.Fatal(err)
	}
	// The pair record is the second record of each file and identical in
	// plaintext; under a shared keystream its ciphertext would be
	// byte-identical across the two files.
	first := int64(headerBytes) + int64(binary.LittleEndian.Uint32(a[:4]))
	recA := a[first+headerBytes+16:]
	recB := b[first+headerBytes+16:]
	n := len(pair[0].Key) + len(pair[0].Value) + 2
	if bytes.Equal(recA[:n], recB[:n]) {
		t.Fatal("two snapshots encrypted an identical pair to identical ciphertext (shared keystream)")
	}
}

func TestMissingHistoryIsTampering(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncNever, 64)
	recoverAll(t, l, 0)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	first := l.segs[0].path
	mid := l.segs[1].path
	l.Close()

	// Deleting an interior segment leaves a sequence gap.
	if err := os.Remove(mid); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, FsyncNever, 64)
	if _, err := l2.Recover(0, nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("interior segment removal: err = %v, want ErrTampered", err)
	}
	l2.Close()

	// Deleting the oldest segment removes history the snapshot does not
	// cover.
	if err := os.Remove(first); err != nil {
		t.Fatal(err)
	}
	l3 := openLog(t, dir, FsyncNever, 64)
	if _, err := l3.Recover(0, nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("history removal: err = %v, want ErrTampered", err)
	}
	l3.Close()
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(7)
	pairs := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("bb"), Value: bytes.Repeat([]byte{0xCD}, 100)},
		{Key: []byte("empty"), Value: nil},
	}
	if _, err := WriteSnapshot(dir, s, 10, pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, s, 25, pairs[:1]); err != nil {
		t.Fatal(err)
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || filepath.Base(snaps[0]) != SnapshotName(25) {
		t.Fatalf("snapshots = %v, want newest-first with %s first", snaps, SnapshotName(25))
	}
	covered, got, err := ReadSnapshot(filepath.Join(dir, SnapshotName(10)), s)
	if err != nil {
		t.Fatal(err)
	}
	if covered != 10 || len(got) != len(pairs) {
		t.Fatalf("covered=%d pairs=%d, want 10/%d", covered, len(got), len(pairs))
	}
	for i := range pairs {
		if !bytes.Equal(got[i].Key, pairs[i].Key) || !bytes.Equal(got[i].Value, pairs[i].Value) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if err := PruneSnapshots(dir, 25); err != nil {
		t.Fatal(err)
	}
	snaps, _ = Snapshots(dir)
	if len(snaps) != 1 || filepath.Base(snaps[0]) != SnapshotName(25) {
		t.Fatalf("after prune: %v, want only %s", snaps, SnapshotName(25))
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(7)
	pairs := []Pair{{Key: []byte("key"), Value: []byte("value")}}
	if _, err := WriteSnapshot(dir, s, 3, pairs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotName(3))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := range pristine {
		bad := append([]byte(nil), pristine...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshot(path, s); !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at %d: err = %v, want ErrTampered", off, err)
		}
	}
	// Truncation of a renamed snapshot is also tampering.
	if err := os.WriteFile(path, pristine[:len(pristine)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path, s); !errors.Is(err, ErrTampered) {
		t.Fatalf("truncated snapshot: err = %v, want ErrTampered", err)
	}
	// A wrong seed (different enclave identity) cannot read it.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path, seal.New(8)); !errors.Is(err, ErrTampered) {
		t.Fatalf("foreign-seed read: err = %v, want ErrTampered", err)
	}
}

// TestRecoverAfterSeqAtSegmentBoundary pins the catch-up edge case
// replication leans on: recovering with afterSeq equal to the last
// sequence of a segment replays exactly from the next segment's first
// record, while the whole lineage is still verified.
func TestRecoverAfterSeqAtSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncNever, 64) // tiny segments force rotation
	recoverAll(t, l, 0)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(l.segs))
	}
	boundary := l.segs[1].firstSeq - 1 // last record of the first segment
	l.Close()
	l2 := openLog(t, dir, FsyncNever, 64)
	var first uint64
	var replayed int
	info, err := l2.Recover(boundary, func(seq uint64, _ []byte) error {
		if replayed == 0 {
			first = seq
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Verified != 20 {
		t.Fatalf("verified %d records, want all 20", info.Verified)
	}
	if first != boundary+1 {
		t.Fatalf("replay started at seq %d, want %d (next segment's first record)", first, boundary+1)
	}
	if want := 20 - int(boundary); replayed != want {
		t.Fatalf("replayed %d records, want %d", replayed, want)
	}
	if l2.NextSeq() != 21 {
		t.Fatalf("NextSeq = %d, want 21", l2.NextSeq())
	}
	l2.Close()
}

// TestRecoverAfterSeqBeyondNextSeq pins what happens when the caller's
// afterSeq overshoots the log: everything is still verified, nothing is
// replayed, and NextSeq lands at the true log end — not afterSeq+1 — so
// appends continue the real lineage.
func TestRecoverAfterSeqBeyondNextSeq(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2 := openLog(t, dir, FsyncBatch, 1<<20)
	got, info := recoverAll(t, l2, 100)
	if len(got) != 0 || info.Replayed != 0 {
		t.Fatalf("replayed %d records with afterSeq beyond the log, want 0", len(got))
	}
	if info.Verified != 5 {
		t.Fatalf("verified %d records, want 5", info.Verified)
	}
	if l2.NextSeq() != 6 {
		t.Fatalf("NextSeq = %d, want 6 (true log end, not afterSeq+1)", l2.NextSeq())
	}
	if res, err := l2.Append([]byte("after")); err != nil || res.FirstSeq != 6 {
		t.Fatalf("append after overshoot recover: res=%+v err=%v, want seq 6", res, err)
	}
	l2.Close()
}

// TestRecoverResumesAfterTruncateTailSalvage pins catch-up across a
// salvage: after TruncateTail drops a tampered suffix and new appends
// reuse those sequence numbers, a later Recover from a snapshot
// boundary replays only the surviving lineage.
func TestRecoverResumesAfterTruncateTailSalvage(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	var bound int64
	for i := 0; i < 4; i++ {
		res, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			bound = int64(res.Bytes)
		} else if i == 1 {
			bound += int64(res.Bytes)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[bound+headerBytes+2] ^= 0xFF // corrupt record 3's body
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, FsyncBatch, 1<<20)
	if _, err := l2.Recover(0, nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
	if err := l2.TruncateTail(); err != nil {
		t.Fatal(err)
	}
	if res, err := l2.Append([]byte("salvaged")); err != nil || res.FirstSeq != 3 {
		t.Fatalf("salvage append: res=%+v err=%v, want seq 3", res, err)
	}
	l2.Close()
	// A catch-up recover from seq 2 (as if a snapshot covered the valid
	// prefix) replays only the re-issued record.
	l3 := openLog(t, dir, FsyncBatch, 1<<20)
	got, info := recoverAll(t, l3, 2)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("salvaged")) {
		t.Fatalf("replayed %v, want only the salvaged record", got)
	}
	if info.Torn {
		t.Fatal("salvaged log reported torn")
	}
	if l3.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", l3.NextSeq())
	}
	l3.Close()
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncBatch, FsyncAlways, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
