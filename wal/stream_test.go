package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/ariakv/aria/internal/seal"
)

func TestSegmentsListsAscending(t *testing.T) {
	dir := t.TempDir()
	if segs, err := Segments(dir); err != nil || len(segs) != 0 {
		t.Fatalf("empty dir: segs=%v err=%v", segs, err)
	}
	if segs, err := Segments(dir + "/missing"); err != nil || len(segs) != 0 {
		t.Fatalf("missing dir: segs=%v err=%v", segs, err)
	}
	l := openLog(t, dir, FsyncNever, 64)
	recoverAll(t, l, 0)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	if segs[0].FirstSeq != 1 {
		t.Fatalf("first segment starts at %d, want 1", segs[0].FirstSeq)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstSeq <= segs[i-1].FirstSeq {
			t.Fatalf("segments not ascending: %v", segs)
		}
	}
}

func TestListSnapshotsNewestFirst(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(7)
	pair := []Pair{{Key: []byte("k"), Value: []byte("v")}}
	for _, covered := range []uint64{5, 20, 10} {
		if _, err := WriteSnapshot(dir, s, covered, pair); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].Covered != 20 || snaps[1].Covered != 10 || snaps[2].Covered != 5 {
		t.Fatalf("snapshots = %+v, want covered 20, 10, 5", snaps)
	}
}

// TestSegmentReaderStreamVerifierRoundTrip streams a segment's sealed
// records through the reader and verifies them with a second same-seed
// sealer — the exact primary-to-replica path, minus the network.
func TestSegmentReaderStreamVerifierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	var want [][]byte
	for i := 0; i < 8; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segs=%v err=%v, want one segment", segs, err)
	}
	r, err := OpenSegment(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v := NewStreamVerifier(seal.New(99)) // replica's own sealer, same seed
	v.StartSegment(segs[0].FirstSeq)
	for i := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		seq, payload, err := v.Verify(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i+1) || !bytes.Equal(payload, want[i]) {
			t.Fatalf("record %d: seq=%d payload=%q", i, seq, payload)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of segment: err = %v, want io.EOF", err)
	}
}

// TestSegmentReaderToleratesGrowingTail pins the live-tail contract: an
// incomplete record returns io.EOF without advancing, and the same
// reader picks the record up once the writer finishes it.
func TestSegmentReaderToleratesGrowingTail(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, _ := Segments(dir)
	pristine, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the record mid-body, as if the writer were still appending.
	if err := os.WriteFile(segs[0].Path, pristine[:len(pristine)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("incomplete tail: err = %v, want io.EOF", err)
	}
	if r.Offset() != 0 {
		t.Fatalf("offset advanced to %d on incomplete tail", r.Offset())
	}
	// The writer finishes the record; the reader resumes.
	if err := os.WriteFile(segs[0].Path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	v := NewStreamVerifier(seal.New(99))
	v.StartSegment(1)
	if _, payload, err := v.Verify(rec); err != nil || !bytes.Equal(payload, []byte("first")) {
		t.Fatalf("payload=%q err=%v", payload, err)
	}
}

// TestStreamVerifierRejectsDefects pins that a spliced, replayed, or
// corrupted stream fails at the first bad record.
func TestStreamVerifierRejectsDefects(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, FsyncBatch, 1<<20)
	recoverAll(t, l, 0)
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := Segments(dir)
	read := func() [][]byte {
		r, err := OpenSegment(segs[0].Path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		var recs [][]byte
		for {
			rec, err := r.Next()
			if err == io.EOF {
				return recs
			}
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
	}
	recs := read()
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	fresh := func() *StreamVerifier {
		v := NewStreamVerifier(seal.New(99))
		v.StartSegment(1)
		return v
	}
	// No segment start at all.
	if _, _, err := NewStreamVerifier(seal.New(99)).Verify(recs[0]); !errors.Is(err, ErrTampered) {
		t.Fatalf("verify before segment start: %v", err)
	}
	// Skipped record (sequence discontinuity breaks the MAC chain).
	v := fresh()
	if _, _, err := v.Verify(recs[1]); !errors.Is(err, ErrTampered) {
		t.Fatalf("skipped record: %v", err)
	}
	// Replayed record.
	v = fresh()
	if _, _, err := v.Verify(recs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Verify(recs[0]); !errors.Is(err, ErrTampered) {
		t.Fatalf("replayed record: %v", err)
	}
	// Flipped byte.
	v = fresh()
	bad := append([]byte(nil), recs[0]...)
	bad[len(bad)-1] ^= 1
	if _, _, err := v.Verify(bad); !errors.Is(err, ErrTampered) {
		t.Fatalf("corrupt record: %v", err)
	}
	// A different seed (foreign enclave identity) cannot verify.
	v = NewStreamVerifier(seal.New(98))
	v.StartSegment(1)
	if _, _, err := v.Verify(recs[0]); !errors.Is(err, ErrTampered) {
		t.Fatalf("foreign seed: %v", err)
	}
	// A broken frame header is tampering at the reader layer.
	pristine, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), pristine...)
	bad[4] ^= 0xFF // complement half of the first header
	if err := os.WriteFile(segs[0].Path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrTampered) {
		t.Fatalf("broken header: err = %v, want ErrTampered", err)
	}
}
