package aria

// Tests for the compressed cold tier (Options.ColdCompress; DESIGN.md
// §15): segment checkpoints, demotion/promotion transparency across the
// whole operation surface, recovery equivalence with the snapshot path,
// two-generation retention on disk, and toggling the tier across
// reopens. The cold-tier crash matrix lives in crash_matrix_test.go.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// coldOpts is durableOpts with the cold tier on.
func coldOpts(dir string) Options {
	opts := durableOpts(dir)
	opts.ColdCompress = true
	return opts
}

// coldValue builds the repo's compressible corpus value for key i.
func coldValueAt(i int) []byte {
	v := make([]byte, 64)
	for j := range v {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

func coldKey(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }

// fillCold loads n corpus pairs.
func fillCold(t *testing.T, st Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Put(coldKey(i), coldValueAt(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

// checkpoint runs one explicit checkpoint, failing the test on error.
func checkpoint(t *testing.T, st Store) {
	t.Helper()
	if err := st.(Durable).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
}

func TestColdCheckpointWritesSegments(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, coldOpts(dir))
	defer mustClose(t, st)
	fillCold(t, st, 300)
	checkpoint(t, st)
	stats := st.Stats()
	if stats.Segments == 0 || stats.SegmentBytes == 0 {
		t.Fatalf("no segments after checkpoint: %+v", stats)
	}
	if stats.CompRawBytes == 0 || stats.CompBytes >= stats.CompRawBytes {
		t.Errorf("corpus did not compress: comp=%d raw=%d", stats.CompBytes, stats.CompRawBytes)
	}
	names := 0
	for _, e := range mustReadDir(t, dir) {
		if strings.HasPrefix(e, "seg-") || strings.HasPrefix(e, "segset-") {
			names++
		}
		if strings.HasPrefix(e, "snap-") {
			t.Errorf("cold checkpoint left a raw snapshot: %s", e)
		}
	}
	if names < 2 {
		t.Fatalf("expected a segment and a set manifest on disk, found %d files", names)
	}
}

func mustReadDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

// TestColdDemotionAndPromotion: after two checkpoints, untouched keys
// are demoted; every read route must still see exact values, and the
// stats must show the demotion.
func TestColdDemotionAndPromotion(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, coldOpts(dir))
	defer mustClose(t, st)
	fillCold(t, st, 400)
	checkpoint(t, st)
	// Touch a small hot set, then checkpoint: everything else demotes.
	for i := 0; i < 20; i++ {
		if err := st.Put(coldKey(i), coldValueAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint(t, st)
	stats := st.Stats()
	if stats.ColdKeys == 0 || stats.ColdBytes == 0 {
		t.Fatalf("nothing demoted: %+v", stats)
	}
	if stats.Keys != 400 {
		t.Fatalf("Keys = %d after demotion, want 400 (logical count)", stats.Keys)
	}
	// Point reads promote with the exact value.
	for _, i := range []int{0, 19, 20, 200, 399} {
		v, err := st.Get(coldKey(i))
		if err != nil || !bytes.Equal(v, coldValueAt(i)) {
			t.Fatalf("get %d: %v %q", i, err, v)
		}
	}
	if st.Stats().ColdHits == 0 {
		t.Error("reads of demoted keys counted no cold hits")
	}
	// Batch read across hot and cold.
	keys := [][]byte{coldKey(21), coldKey(350), coldKey(399)}
	vals, errs := st.MGet(keys)
	if len(vals) != len(keys) {
		t.Fatalf("mget returned %d values for %d keys", len(vals), len(keys))
	}
	for i := range keys {
		// nil errs means all-success, matching the batch-op convention.
		if len(errs) != 0 && errs[i] != nil {
			t.Fatalf("mget %s: %v", keys[i], errs[i])
		}
	}
	for i, want := range [][]byte{coldValueAt(21), coldValueAt(350), coldValueAt(399)} {
		if !bytes.Equal(vals[i], want) {
			t.Fatalf("mget %s = %q, want corpus value", keys[i], vals[i])
		}
	}
	// Scan sees the whole keyspace in order.
	if got := dump(t, st); len(got) != 400 {
		t.Fatalf("scan saw %d keys, want 400", len(got))
	}
	if st.Stats().ColdKeys != 0 {
		t.Errorf("scan left %d keys cold; range promotion should cover all", st.Stats().ColdKeys)
	}
}

// TestColdMissCounting: only reads that fall past both tiers count.
func TestColdMissCounting(t *testing.T) {
	st := mustOpen(t, coldOpts(t.TempDir()))
	defer mustClose(t, st)
	fillCold(t, st, 10)
	if _, err := st.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if err := st.Put([]byte("fresh"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.ColdMisses != 1 {
		t.Errorf("ColdMisses = %d, want 1 (the absent read; the fresh put is not a miss)", stats.ColdMisses)
	}
}

// TestColdVersionAndTTLSurviveDemotion: CAS versions and TTL deadlines
// must round-trip through demotion exactly.
func TestColdVersionAndTTLSurviveDemotion(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, coldOpts(dir))
	defer mustClose(t, st)
	fillCold(t, st, 50)
	// A TTL'd key with a long deadline.
	if err := st.PutTTL([]byte("ttl-key"), []byte("ttl-val"), time.Hour); err != nil {
		t.Fatal(err)
	}
	_, verBefore, err := st.GetV(coldKey(7))
	if err != nil {
		t.Fatal(err)
	}
	checkpoint(t, st) // round 1: everything hot
	// Advance the log so the second checkpoint is not a no-op; every key
	// other than this one is untouched and demotes.
	if err := st.Put([]byte("hot-marker"), []byte("hot")); err != nil {
		t.Fatal(err)
	}
	checkpoint(t, st) // round 2: all untouched keys demote
	if st.Stats().ColdKeys == 0 {
		t.Fatal("setup failed: nothing demoted")
	}
	// CAS against the pre-demotion version must succeed after promotion.
	if err := st.CompareAndSwap(coldKey(7), []byte("cas-new"), verBefore); err != nil {
		t.Fatalf("CAS with pre-demotion version: %v", err)
	}
	// And a stale version must still be rejected.
	if err := st.CompareAndSwap(coldKey(7), []byte("cas-stale"), verBefore); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale CAS: %v", err)
	}
	// The TTL key promoted with its deadline intact.
	if v, err := st.Get([]byte("ttl-key")); err != nil || string(v) != "ttl-val" {
		t.Fatalf("ttl key after demotion: %v %q", err, v)
	}
	// Transactions across hot and cold keys.
	err = st.TxnCommit([]TxnOp{
		{Key: coldKey(8), Value: []byte("txn-8")},
		{Key: coldKey(9), Value: []byte("txn-9")},
	})
	if err != nil {
		t.Fatalf("txn over cold keys: %v", err)
	}
	if v, _ := st.Get(coldKey(8)); string(v) != "txn-8" {
		t.Fatalf("txn write lost: %q", v)
	}
}

// TestColdRecoveryMatchesSnapshotRecovery: the same operation history
// recovered through segments and through snapshots yields identical
// state.
func TestColdRecoveryMatchesSnapshotRecovery(t *testing.T) {
	history := func(st Store) error {
		for i := 0; i < 200; i++ {
			if err := st.Put(coldKey(i), coldValueAt(i)); err != nil {
				return err
			}
		}
		if err := st.(Durable).Checkpoint(); err != nil {
			return err
		}
		for i := 0; i < 60; i += 2 {
			if err := st.Put(coldKey(i), []byte(fmt.Sprintf("v2-%d", i))); err != nil {
				return err
			}
		}
		for i := 100; i < 120; i++ {
			if err := st.Delete(coldKey(i)); err != nil {
				return err
			}
		}
		if err := st.(Durable).Checkpoint(); err != nil {
			return err
		}
		// Tail ops that stay WAL-only past the last checkpoint.
		return st.Put([]byte("tail"), []byte("tail-v"))
	}
	states := make([]map[string]string, 2)
	for i, cold := range []bool{false, true} {
		dir := t.TempDir()
		opts := durableOpts(dir)
		opts.ColdCompress = cold
		st := mustOpen(t, opts)
		if err := history(st); err != nil {
			t.Fatalf("cold=%v history: %v", cold, err)
		}
		mustClose(t, st)
		st = mustOpen(t, opts)
		states[i] = dump(t, st)
		mustClose(t, st)
	}
	if len(states[0]) != len(states[1]) {
		t.Fatalf("state sizes differ: snapshot %d vs segments %d", len(states[0]), len(states[1]))
	}
	for k, v := range states[0] {
		if states[1][k] != v {
			t.Errorf("key %q: snapshot %q vs segments %q", k, v, states[1][k])
		}
	}
}

// TestColdRetentionKeepsTwoGenerations: after many checkpoints the disk
// holds at most two set manifests, and every referenced segment file.
func TestColdRetentionKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	opts := coldOpts(dir)
	opts.CompactEvery = 4
	st := mustOpen(t, opts)
	defer mustClose(t, st)
	fillCold(t, st, 100)
	for round := 0; round < 12; round++ {
		for i := 0; i < 10; i++ {
			k := (round*10 + i) % 100
			if err := st.Put(coldKey(k), coldValueAt(k+round)); err != nil {
				t.Fatal(err)
			}
		}
		checkpoint(t, st)
	}
	sets, segs := 0, 0
	for _, name := range mustReadDir(t, dir) {
		switch {
		case strings.HasPrefix(name, "segset-"):
			sets++
		case strings.HasPrefix(name, "seg-"):
			segs++
		}
	}
	if sets > 2 {
		t.Errorf("%d set manifests on disk, retention should keep 2", sets)
	}
	if segs == 0 {
		t.Error("no segments on disk")
	}
	// At CompactEvery=4 a surviving generation holds at most 4+1 segments;
	// two generations can share members, so 10 is a conservative ceiling.
	if segs > 10 {
		t.Errorf("%d segments on disk for two generations of <=5", segs)
	}
	if st.Stats().Compactions == 0 {
		t.Error("12 checkpoints at CompactEvery=4 performed no compaction")
	}
}

// TestColdToggleAcrossReopen: a lineage written with the tier on opens
// with it off (and vice versa) without losing state.
func TestColdToggleAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	// Start cold, write, checkpoint into segments.
	st := mustOpen(t, coldOpts(dir))
	fillCold(t, st, 120)
	checkpoint(t, st)
	if err := st.Put([]byte("after-seg"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	mustClose(t, st)

	// Reopen with the tier off: recovery must read the segment set.
	st = mustOpen(t, durableOpts(dir))
	if v, err := st.Get(coldKey(5)); err != nil || !bytes.Equal(v, coldValueAt(5)) {
		t.Fatalf("segment state lost with tier off: %v %q", err, v)
	}
	if v, err := st.Get([]byte("after-seg")); err != nil || string(v) != "v1" {
		t.Fatalf("WAL tail lost: %v %q", err, v)
	}
	checkpoint(t, st) // writes a raw snapshot
	if err := st.Put([]byte("after-snap"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	mustClose(t, st)

	// Back on: recovery must prefer the newer snapshot over older sets.
	st = mustOpen(t, coldOpts(dir))
	defer mustClose(t, st)
	for _, check := range []struct{ k, v string }{
		{string(coldKey(5)), string(coldValueAt(5))},
		{"after-seg", "v1"},
		{"after-snap", "v2"},
	} {
		if v, err := st.Get([]byte(check.k)); err != nil || string(v) != check.v {
			t.Fatalf("key %q after toggle: %v %q", check.k, err, v)
		}
	}
}

// TestColdShardedStatsAggregate: the sharded wrapper sums the cold-tier
// stats across shards.
func TestColdShardedStatsAggregate(t *testing.T) {
	dir := t.TempDir()
	opts := coldOpts(dir)
	opts.Shards = 2
	st := mustOpen(t, opts)
	defer mustClose(t, st)
	fillCold(t, st, 200)
	checkpoint(t, st)
	stats := st.Stats()
	if stats.Segments < 2 {
		t.Errorf("sharded Segments = %d, want >= 2 (one per shard)", stats.Segments)
	}
	if stats.CompRawBytes == 0 {
		t.Error("sharded CompRawBytes = 0")
	}
	if stats.Keys != 200 {
		t.Errorf("sharded Keys = %d, want 200", stats.Keys)
	}
}
