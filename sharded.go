package aria

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria/internal/shard"
)

// ConcurrentStore is implemented by stores that are safe for concurrent
// use from multiple goroutines because they serialize internally at a
// finer grain than one global lock. Frontends (kvnet) use it as a
// capability check: a store reporting ConcurrentSafe() == true may be
// called from many request goroutines at once, while every other store
// keeps the conservative one-lock path (the engines model a single
// enclave thread and are not goroutine-safe on their own).
type ConcurrentStore interface {
	Store
	// ConcurrentSafe reports whether the store may be called from
	// multiple goroutines concurrently.
	ConcurrentSafe() bool
}

// Sharded is implemented by stores opened with Options.Shards > 1. It
// exposes the partitioning for operations and monitoring: which shard a
// key routes to, and per-shard statistics (the aggregate Stats() sums
// counters and reports the slowest shard's clock).
type Sharded interface {
	// NumShards returns the shard count.
	NumShards() int
	// ShardFor returns the index of the shard serving key.
	ShardFor(key []byte) int
	// ShardStats returns shard i's individual snapshot.
	ShardStats(i int) Stats
}

// openSharded builds Options.Shards independent single-enclave stores,
// each with a fair split of every EPC budget, behind one concurrent
// router (the per-tenant EPC split of the paper's §VI-D5, turned into a
// scale-out unit).
func openSharded(opts Options) (Store, error) {
	n := opts.Shards
	if opts.DataDir != "" {
		// The shard count must agree with what DataDir records before
		// any lineage is touched: recovering N lineages under a
		// different router would silently strand committed keys.
		if err := checkShardManifest(opts.DataDir, opts.Seed, n); err != nil {
			return nil, err
		}
	}
	epcs := shard.SplitBudget(opts.EPCBytes, n)
	caches := shard.SplitBudget(opts.SecureCacheBytes, n)
	pins := shard.SplitBudget(opts.PinBudgetBytes, n)
	roots := shard.SplitBudget(opts.ShieldStoreRootBytes, n)
	keys := shard.SplitKeys(opts.ExpectedKeys, n)
	s := &shardedStore{
		shards:   make([]Store, n),
		mus:      make([]sync.Mutex, n),
		router:   shard.NewRouter(n),
		scheme:   opts.Scheme,
		maxKey:   opts.MaxKeySize,
		maxValue: opts.MaxValueSize,
	}
	// Mirror the engines' limit defaults (see semStore): cross-shard
	// transactions pre-validate sizes up front, so no shard can reject a
	// write after another shard already applied its part.
	if s.maxKey <= 0 {
		s.maxKey = 256
	}
	if s.maxValue <= 0 {
		s.maxValue = 4096
	}
	// Shards build in parallel: with Options.DataDir each shard owns a
	// WAL+snapshot lineage in its shard-<i> subdirectory, and crash
	// recovery (snapshot load + WAL replay) runs concurrently across
	// shards — N independent enclaves recovering at once.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		so := opts
		so.Shards = 1
		so.EPCBytes = epcs[i]
		so.SecureCacheBytes = caches[i]
		so.PinBudgetBytes = pins[i]
		so.ShieldStoreRootBytes = roots[i]
		so.ExpectedKeys = keys
		so.Seed = opts.Seed + uint64(i)
		wg.Add(1)
		go func(i int, so Options) {
			defer wg.Done()
			st, err := openStore(so)
			if err != nil {
				errs[i] = err
				return
			}
			if opts.DataDir != "" {
				st, err = openDurable(st, so, filepath.Join(opts.DataDir, fmt.Sprintf("shard-%d", i)))
				if err != nil {
					errs[i] = err
					return
				}
			}
			if opts.Metrics != nil {
				// Each shard gets its own instruments, labelled
				// shard="i": the per-shard breakout the aggregate
				// Stats() cannot give.
				st = meter(st, opts.Metrics, strconv.Itoa(i))
			}
			s.shards[i] = st
		}(i, so)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Close whatever opened so no WAL file handles leak.
		for _, st := range s.shards {
			if d, ok := st.(Durable); ok {
				d.Close()
			}
		}
		return nil, err
	}
	return s, nil
}

// shardedStore routes every operation to the shard owning its key and
// serializes per shard, so operations on different shards run truly
// concurrently — N enclave threads instead of one. Each shard carries its
// own integrity guard: a quarantined key on shard 3 degrades shard 3
// only, and the other shards keep serving untouched.
type shardedStore struct {
	shards   []Store
	mus      []sync.Mutex // one per shard: each engine models one enclave thread
	router   shard.Router
	scheme   Scheme
	maxKey   int
	maxValue int
	rr       atomic.Uint64 // round-robin for charges not tied to a key
}

func (s *shardedStore) ConcurrentSafe() bool { return true }

func (s *shardedStore) NumShards() int { return len(s.shards) }

func (s *shardedStore) ShardFor(key []byte) int { return s.router.Pick(key) }

func (s *shardedStore) ShardStats(i int) Stats {
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Stats()
}

// WALShards implements Replicable: one lineage per shard when every
// shard is durable, zero (not replicable) otherwise.
func (s *shardedStore) WALShards() int {
	for _, sh := range s.shards {
		r, ok := sh.(Replicable)
		if !ok || r.WALShards() == 0 {
			return 0
		}
	}
	return len(s.shards)
}

// WALShardDir implements Replicable for shard i's lineage.
func (s *shardedStore) WALShardDir(i int) string {
	return s.shards[i].(Replicable).WALShardDir(0)
}

// WALShardNextSeq implements Replicable for shard i's lineage (the
// shard's own lock serializes against concurrent appends).
func (s *shardedStore) WALShardNextSeq(i int) uint64 {
	return s.shards[i].(Replicable).WALShardNextSeq(0)
}

// SetCommitHook implements Replicable, fanning the same hook out to
// every shard's lineage.
func (s *shardedStore) SetCommitHook(fn func()) {
	for _, sh := range s.shards {
		if r, ok := sh.(Replicable); ok {
			r.SetCommitHook(fn)
		}
	}
}

func (s *shardedStore) Put(key, value []byte) error {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Put(key, value)
}

func (s *shardedStore) Get(key []byte) ([]byte, error) {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Get(key)
}

func (s *shardedStore) Delete(key []byte) error {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Delete(key)
}

func (s *shardedStore) GetV(key []byte) ([]byte, uint64, error) {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].GetV(key)
}

func (s *shardedStore) CompareAndSwap(key, value []byte, expect uint64) error {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].CompareAndSwap(key, value, expect)
}

func (s *shardedStore) PutTTL(key, value []byte, ttl time.Duration) error {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].PutTTL(key, value, ttl)
}

// putExpireAbs implements expiryApplier (the replica apply path),
// routing the absolute-deadline write to the shard owning the key.
func (s *shardedStore) putExpireAbs(key, value []byte, exp int64) error {
	i := s.router.Pick(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	ea, ok := s.shards[i].(expiryApplier)
	if !ok {
		return fmt.Errorf("aria: shard %d (%T) cannot apply ttl records", i, s.shards[i])
	}
	return ea.putExpireAbs(key, value, exp)
}

// ---- transactions across shards --------------------------------------------------

// TxnCommit commits an optimistic transaction whose keys may span
// shards. Single-shard transactions delegate directly and inherit the
// shard's one-WAL-record atomicity. Cross-shard transactions take every
// involved shard's lock in ascending index order (no deadlock against
// other transactions), validate every shard's checks first, and only
// then apply — so a conflict anywhere aborts the whole transaction with
// nothing applied. Each writing shard then seals its own writes as one
// WAL record; durability of the cross-shard group is per shard (see
// docs/DESIGN.md on the crash window between shard commits).
func (s *shardedStore) TxnCommit(ops []TxnOp) error {
	if len(ops) == 0 {
		return fmt.Errorf("aria: empty transaction")
	}
	// Pre-validate shapes up front: once phase 2 starts applying, a
	// later shard must not be able to reject a malformed write.
	for i := range ops {
		op := &ops[i]
		if len(op.Key) == 0 {
			return ErrEmptyKey
		}
		if op.ReadOnly {
			if !op.Check {
				return fmt.Errorf("aria: read-only txn op without version check")
			}
			continue
		}
		if len(op.Key) > s.maxKey {
			return fmt.Errorf("%w: key %d bytes (max %d)", ErrTooLarge, len(op.Key), s.maxKey)
		}
		if !op.Delete && len(op.Value) > s.maxValue {
			return fmt.Errorf("%w: value %d bytes (max %d)", ErrTooLarge, len(op.Value), s.maxValue)
		}
	}
	groups := make([][]TxnOp, len(s.shards))
	involved := make([]int, 0, 2)
	for i := range ops {
		sh := s.router.Pick(ops[i].Key)
		if len(groups[sh]) == 0 {
			involved = append(involved, sh)
		}
		groups[sh] = append(groups[sh], ops[i])
	}
	if len(involved) == 1 {
		sh := involved[0]
		s.mus[sh].Lock()
		defer s.mus[sh].Unlock()
		return s.shards[sh].TxnCommit(groups[sh])
	}
	sort.Ints(involved)
	for _, sh := range involved {
		s.mus[sh].Lock()
	}
	defer func() {
		for _, sh := range involved {
			s.mus[sh].Unlock()
		}
	}()
	// Phase 1: validate every shard's read set while all locks are held.
	// A failure here aborts with zero writes applied anywhere.
	for _, sh := range involved {
		checks := txnChecksOnly(groups[sh])
		if len(checks) == 0 {
			continue
		}
		if err := s.shards[sh].TxnCommit(checks); err != nil {
			return err
		}
	}
	// Phase 2: apply each shard's writes with checks stripped — the
	// validation above already passed under these same locks, and
	// re-checking would observe versions bumped by phase 2 itself.
	var errs []error
	for _, sh := range involved {
		writes := txnWritesOnly(groups[sh])
		if len(writes) == 0 {
			continue
		}
		if err := s.shards[sh].TxnCommit(writes); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh, err))
		}
	}
	return errors.Join(errs...)
}

// txnChecksOnly extracts a validation-only transaction from one shard's
// ops: every version check, converted to a read-only op.
func txnChecksOnly(ops []TxnOp) []TxnOp {
	var checks []TxnOp
	for i := range ops {
		if ops[i].Check {
			checks = append(checks, TxnOp{Key: ops[i].Key, ReadOnly: true, Check: true, Version: ops[i].Version})
		}
	}
	return checks
}

// txnWritesOnly extracts one shard's writes with version checks
// stripped, for the apply phase of a cross-shard commit.
func txnWritesOnly(ops []TxnOp) []TxnOp {
	var writes []TxnOp
	for i := range ops {
		if ops[i].ReadOnly {
			continue
		}
		w := ops[i]
		w.Check = false
		w.Version = 0
		writes = append(writes, w)
	}
	return writes
}

// applyTxnWrites implements txnApplier (the replica apply path). A
// replicated txn record comes from one primary shard's lineage, but the
// writes are grouped and routed anyway so the method is correct even if
// a future lineage mixes shards.
func (s *shardedStore) applyTxnWrites(writes []txnWrite) error {
	groups := make([][]txnWrite, len(s.shards))
	involved := make([]int, 0, 1)
	for i := range writes {
		sh := s.router.Pick(writes[i].key)
		if len(groups[sh]) == 0 {
			involved = append(involved, sh)
		}
		groups[sh] = append(groups[sh], writes[i])
	}
	sort.Ints(involved)
	for _, sh := range involved {
		s.mus[sh].Lock()
	}
	defer func() {
		for _, sh := range involved {
			s.mus[sh].Unlock()
		}
	}()
	for _, sh := range involved {
		ta, ok := s.shards[sh].(txnApplier)
		if !ok {
			return fmt.Errorf("aria: shard %d (%T) cannot apply txn records", sh, s.shards[sh])
		}
		if err := ta.applyTxnWrites(groups[sh]); err != nil {
			return err
		}
	}
	return nil
}

// ---- batched operations across shards -------------------------------------------

// splitIdx partitions batch positions by owning shard: splitIdx(keys)[sh]
// lists the positions in the original batch whose keys route to shard sh.
// Keeping positions (not keys) is what makes reassembly order-preserving.
func (s *shardedStore) splitIdx(keys [][]byte) [][]int {
	pos := make([][]int, len(s.shards))
	for i, k := range keys {
		sh := s.router.Pick(k)
		pos[sh] = append(pos[sh], i)
	}
	return pos
}

// scatter fans one sub-batch per involved shard out to parallel
// goroutines — N enclaves each entered once — and waits for all of them.
// run receives the shard index and that shard's batch positions under the
// shard's lock.
func (s *shardedStore) scatter(pos [][]int, run func(sh int, idx []int)) {
	var wg sync.WaitGroup
	for sh, idx := range pos {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idx []int) {
			defer wg.Done()
			s.mus[sh].Lock()
			defer s.mus[sh].Unlock()
			run(sh, idx)
		}(sh, idx)
	}
	wg.Wait()
}

// MGet fans the batch out across shards in parallel and reassembles the
// results in the caller's key order. Each shard charges its own batched
// enclave entry for its sub-batch.
func (s *shardedStore) MGet(keys [][]byte) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	var emu sync.Mutex
	var errs []error
	s.scatter(s.splitIdx(keys), func(sh int, idx []int) {
		sub := make([][]byte, len(idx))
		for j, p := range idx {
			sub[j] = keys[p]
		}
		vs, es := s.shards[sh].MGet(sub)
		for j, p := range idx {
			vals[p] = vs[j] // disjoint positions: goroutines never collide
		}
		if es == nil {
			return
		}
		emu.Lock()
		defer emu.Unlock()
		for j, p := range idx {
			if es[j] != nil {
				errs = batchErr(errs, len(keys), p, es[j])
			}
		}
	})
	return vals, errs
}

// MPut fans the write batch out across shards in parallel with the same
// order-preserving reassembly as MGet.
func (s *shardedStore) MPut(pairs []KV) []error {
	keys := make([][]byte, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
	}
	var emu sync.Mutex
	var errs []error
	s.scatter(s.splitIdx(keys), func(sh int, idx []int) {
		sub := make([]KV, len(idx))
		for j, p := range idx {
			sub[j] = pairs[p]
		}
		es := s.shards[sh].MPut(sub)
		if es == nil {
			return
		}
		emu.Lock()
		defer emu.Unlock()
		for j, p := range idx {
			if es[j] != nil {
				errs = batchErr(errs, len(pairs), p, es[j])
			}
		}
	})
	return errs
}

// MDelete fans the delete batch out across shards in parallel with the
// same order-preserving reassembly as MGet.
func (s *shardedStore) MDelete(keys [][]byte) []error {
	var emu sync.Mutex
	var errs []error
	s.scatter(s.splitIdx(keys), func(sh int, idx []int) {
		sub := make([][]byte, len(idx))
		for j, p := range idx {
			sub[j] = keys[p]
		}
		es := s.shards[sh].MDelete(sub)
		if es == nil {
			return
		}
		emu.Lock()
		defer emu.Unlock()
		for j, p := range idx {
			if es[j] != nil {
				errs = batchErr(errs, len(keys), p, es[j])
			}
		}
	})
	return errs
}

// Stats aggregates across shards: event and operation counters sum;
// SimCycles/SimSeconds report the slowest shard (the shards execute in
// parallel, so the straggler's clock is the wall clock); Health() is
// worst-of by construction, because any shard's integrity failures land
// in the summed IntegrityFailures and the policy is uniform.
func (s *shardedStore) Stats() Stats {
	agg := Stats{Scheme: s.scheme}
	stopSwap := true
	for i := range s.shards {
		st := s.ShardStats(i)
		agg.Gets += st.Gets
		agg.Puts += st.Puts
		agg.Deletes += st.Deletes
		agg.Keys += st.Keys
		agg.PageSwaps += st.PageSwaps
		agg.Ecalls += st.Ecalls
		agg.Ocalls += st.Ocalls
		agg.MACs += st.MACs
		agg.CTROps += st.CTROps
		agg.Batches += st.Batches
		agg.BatchedKeys += st.BatchedKeys
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.EPCUsedBytes += st.EPCUsedBytes
		agg.IntegrityFailures += st.IntegrityFailures
		agg.QuarantinedKeys += st.QuarantinedKeys
		agg.IntegrityPolicy = st.IntegrityPolicy
		agg.TxnCommits += st.TxnCommits
		agg.TxnConflicts += st.TxnConflicts
		agg.CASMismatches += st.CASMismatches
		agg.TTLExpired += st.TTLExpired
		agg.TTLSwept += st.TTLSwept
		agg.TTLSweeps += st.TTLSweeps
		agg.WALAppends += st.WALAppends
		agg.WALRecords += st.WALRecords
		agg.WALBytes += st.WALBytes
		agg.WALFsyncs += st.WALFsyncs
		agg.Checkpoints += st.Checkpoints
		agg.RecoveredRecords += st.RecoveredRecords
		agg.ColdKeys += st.ColdKeys
		agg.ColdBytes += st.ColdBytes
		agg.ColdHits += st.ColdHits
		agg.ColdMisses += st.ColdMisses
		agg.CompRawBytes += st.CompRawBytes
		agg.CompBytes += st.CompBytes
		agg.CompDictBytes += st.CompDictBytes
		agg.Segments += st.Segments
		agg.SegmentBytes += st.SegmentBytes
		agg.Compactions += st.Compactions
		if st.SimCycles > agg.SimCycles {
			agg.SimCycles = st.SimCycles
			agg.SimSeconds = st.SimSeconds
		}
		if st.PinnedLevels > agg.PinnedLevels {
			agg.PinnedLevels = st.PinnedLevels
		}
		stopSwap = stopSwap && st.StopSwap
	}
	if lookups := agg.CacheHits + agg.CacheMisses; lookups > 0 {
		agg.CacheHitRatio = float64(agg.CacheHits) / float64(lookups)
	}
	agg.StopSwap = stopSwap
	return agg
}

// Checkpoint snapshots every shard in parallel — N independent
// WAL+snapshot lineages checkpointing at once — and joins the per-shard
// errors. Opened without DataDir the shards are not durable and every
// one reports ErrNotDurable.
func (s *shardedStore) Checkpoint() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.mus[i].Lock()
			defer s.mus[i].Unlock()
			d, ok := s.shards[i].(Durable)
			if !ok {
				errs[i] = ErrNotDurable
				return
			}
			errs[i] = d.Checkpoint()
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close flushes and closes every durable shard's log. Non-durable
// shards have nothing to release and close as a no-op, so Close is
// always safe to defer regardless of how the store was opened.
func (s *shardedStore) Close() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.mus[i].Lock()
			defer s.mus[i].Unlock()
			if d, ok := s.shards[i].(Durable); ok {
				errs[i] = d.Close()
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// VerifyIntegrity audits every shard and joins their errors, so one
// tampered shard cannot mask — or abort the audit of — the others.
func (s *shardedStore) VerifyIntegrity() error {
	var errs []error
	for i := range s.shards {
		s.mus[i].Lock()
		err := s.shards[i].VerifyIntegrity()
		s.mus[i].Unlock()
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (s *shardedStore) SetMeasuring(on bool) {
	for i := range s.shards {
		s.mus[i].Lock()
		s.shards[i].SetMeasuring(on)
		s.mus[i].Unlock()
	}
}

func (s *shardedStore) ResetStats() {
	for i := range s.shards {
		s.mus[i].Lock()
		s.shards[i].ResetStats()
		s.mus[i].Unlock()
	}
}

// Scan merges the per-shard ordered scans into one globally ordered
// stream (shards hold disjoint keys, so no duplicates can occur). Each
// shard's lock is held per pulled batch, not across the whole merge, so
// point operations on other shards proceed while a scan runs. Schemes
// without an ordered index return ErrNoScan, same as unsharded.
func (s *shardedStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	scans := make([]shard.ScanFunc, len(s.shards))
	for i := range s.shards {
		i := i
		scans[i] = func(start, end []byte, fn func(k, v []byte) bool) error {
			s.mus[i].Lock()
			defer s.mus[i].Unlock()
			r, ok := s.shards[i].(Ranger)
			if !ok {
				return ErrNoScan
			}
			return r.Scan(start, end, fn)
		}
	}
	return shard.Merge(scans, start, end, 0, fn)
}

// ChargeEcall distributes per-request enclave-entry charges round-robin:
// the frontend does not know which shard a request will route to when it
// crosses the trust boundary, and over many requests the charge lands
// evenly, matching N enclaves each paying their own entries.
func (s *shardedStore) ChargeEcall() {
	i := int(s.rr.Add(1)-1) % len(s.shards)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	if ec, ok := s.shards[i].(EdgeCaller); ok {
		ec.ChargeEcall()
	}
}

// ---- fault injection across shards ---------------------------------------------

// The sharded store exposes the Corrupter surface as the concatenation of
// its shards' untrusted arenas (shard 0 first), so attack demos and tests
// target a byte of one specific shard's memory. Shards whose scheme keeps
// everything in the EPC (baselines) contribute zero bytes. Every access
// takes the shard's lock: the enclave simulator's arenas are plain
// memory, so an unlocked read (even a size probe) races with concurrent
// writers on other goroutines — the -race-visible hole these helpers had
// before the metrics scrape path made concurrent snapshots routine.

// corrupter returns shard i's Corrupter surface under its lock, or nil.
func (s *shardedStore) corrupter(i int) (Corrupter, func()) {
	s.mus[i].Lock()
	c, ok := s.shards[i].(Corrupter)
	if !ok {
		s.mus[i].Unlock()
		return nil, nil
	}
	return c, s.mus[i].Unlock
}

// UntrustedSize implements Corrupter across shards.
func (s *shardedStore) UntrustedSize() int {
	total := 0
	for i := range s.shards {
		if c, unlock := s.corrupter(i); c != nil {
			total += c.UntrustedSize()
			unlock()
		}
	}
	return total
}

// FlipUntrustedByte implements Corrupter across shards: the offset
// addresses the concatenation of per-shard arenas.
func (s *shardedStore) FlipUntrustedByte(offset int, mask byte) bool {
	if offset < 0 {
		return false
	}
	for i := range s.shards {
		c, unlock := s.corrupter(i)
		if c == nil {
			continue
		}
		n := c.UntrustedSize()
		if offset < n {
			flipped := c.FlipUntrustedByte(offset, mask)
			unlock()
			return flipped
		}
		unlock()
		offset -= n
	}
	return false
}

// SnapshotUntrusted implements Corrupter across shards.
func (s *shardedStore) SnapshotUntrusted() []byte {
	var out []byte
	for i := range s.shards {
		if c, unlock := s.corrupter(i); c != nil {
			out = append(out, c.SnapshotUntrusted()...)
			unlock()
		}
	}
	return out
}

// RestoreUntrusted implements Corrupter across shards, splitting the
// snapshot back into per-shard arena prefixes.
func (s *shardedStore) RestoreUntrusted(snap []byte) {
	for i := range s.shards {
		c, unlock := s.corrupter(i)
		if c == nil {
			continue
		}
		n := c.UntrustedSize()
		if n > len(snap) {
			n = len(snap)
		}
		c.RestoreUntrusted(snap[:n])
		unlock()
		snap = snap[n:]
		if len(snap) == 0 {
			return
		}
	}
}
