package aria

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/ariakv/aria/obs"
)

func testKey(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func testValue(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

// TestMetricsDisabledPathUnchanged pins the zero-overhead contract
// structurally: with Metrics nil, Open returns the very store openStore
// builds — no wrapper, no extra indirection, a hot path bit-identical to
// a build without the metrics feature.
func TestMetricsDisabledPathUnchanged(t *testing.T) {
	st, err := Open(Options{Scheme: AriaHash, ExpectedKeys: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*meteredStore); ok {
		t.Fatal("Open with Metrics=nil returned a metered wrapper")
	}
	if _, ok := st.(*semStore); !ok {
		t.Fatalf("Open with Metrics=nil returned %T, want *semStore", st)
	}

	reg := obs.NewRegistry()
	st, err = Open(Options{Scheme: AriaHash, ExpectedKeys: 100, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*meteredStore); !ok {
		t.Fatalf("Open with Metrics set returned %T, want *meteredStore", st)
	}

	sh, err := Open(Options{Scheme: AriaHash, ExpectedKeys: 100, Shards: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ss := sh.(*shardedStore)
	for i, s := range ss.shards {
		if _, ok := s.(*meteredStore); !ok {
			t.Fatalf("shard %d is %T, want *meteredStore", i, s)
		}
	}
}

// TestMeteredSimCyclesUnchanged runs the same operation sequence on a
// metered and an unmetered store and requires identical simulated
// clocks: instrumentation only reads the cycle counter, so the
// simulation results the benchmarks report cannot shift when metrics
// are on.
func TestMeteredSimCyclesUnchanged(t *testing.T) {
	for _, scheme := range []Scheme{AriaHash, AriaBPTree} {
		t.Run(fmt.Sprint(scheme), func(t *testing.T) {
			run := func(reg *obs.Registry) Stats {
				st, err := Open(Options{
					Scheme: scheme, ExpectedKeys: 500, Seed: 11, Metrics: reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 500; i++ {
					if err := st.Put(testKey(i), testValue(i)); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 1000; i++ {
					if _, err := st.Get(testKey(i % 700)); err != nil && err != ErrNotFound {
						t.Fatal(err)
					}
				}
				for i := 0; i < 100; i++ {
					if err := st.Delete(testKey(i)); err != nil {
						t.Fatal(err)
					}
				}
				return st.Stats()
			}
			plain := run(nil)
			metered := run(obs.NewRegistry())
			if plain.SimCycles != metered.SimCycles {
				t.Fatalf("SimCycles diverged: plain=%d metered=%d", plain.SimCycles, metered.SimCycles)
			}
			if plain.PageSwaps != metered.PageSwaps || plain.MACs != metered.MACs {
				t.Fatalf("event counters diverged: plain=%+v metered=%+v", plain, metered)
			}
		})
	}
}

// TestMetricsRecorded checks that operations land in the registry: op
// counters count, latency histograms fill, and the scrape-time
// collector reports the enclave's event counters per shard.
func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(Options{
		Scheme: AriaBPTree, ExpectedKeys: 200, Shards: 2, Seed: 3, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := st.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := st.Get(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	scanned := 0
	if err := st.(Ranger).Scan(nil, nil, func(k, v []byte) bool {
		scanned++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != n {
		t.Fatalf("scan visited %d keys, want %d", scanned, n)
	}

	snap := reg.Snapshot()
	if got, _ := snap.Value(metricOpsTotal, obs.Labels{"op": "put"}); got != n {
		t.Fatalf("%s{op=put} = %v, want %d", metricOpsTotal, got, n)
	}
	if got, _ := snap.Value(metricOpsTotal, obs.Labels{"op": "get"}); got != n {
		t.Fatalf("%s{op=get} = %v, want %d", metricOpsTotal, got, n)
	}
	h, ok := snap.Histogram(metricOpWallNs, obs.Labels{"op": "get"})
	if !ok || h.Count != n {
		t.Fatalf("wall histogram: ok=%v count=%d, want count %d", ok, h.Count, n)
	}
	hc, ok := snap.Histogram(metricOpSimCycles, obs.Labels{"op": "get"})
	if !ok || hc.Count != n || hc.Sum == 0 {
		t.Fatalf("cycle histogram: ok=%v count=%d sum=%d", ok, hc.Count, hc.Sum)
	}
	// Collector-sourced counters must be present for every shard and sum
	// to the aggregate Stats figure.
	agg := st.Stats()
	var macs float64
	for _, shard := range []string{"0", "1"} {
		v, ok := snap.Value(metricMACsTotal, obs.Labels{"shard": shard})
		if !ok || v == 0 {
			t.Fatalf("%s{shard=%s} = %v (ok=%v), want > 0", metricMACsTotal, shard, v, ok)
		}
		macs += v
	}
	if uint64(macs) != agg.MACs {
		t.Fatalf("per-shard MACs sum %v != aggregate %d", macs, agg.MACs)
	}
	if got, _ := snap.Value(metricKeys, nil); int(got) != agg.Keys {
		t.Fatalf("%s = %v, want %d", metricKeys, got, agg.Keys)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`aria_op_wall_ns_bucket{op="get",shard="0",le="+Inf"}`,
		`aria_ecalls_total{shard="1"}`,
		`aria_cache_misses_total{shard="0"}`,
		`aria_health{shard="0"} 0`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMetricsScrapeRace hammers a metered sharded store with writers
// while scraping, snapshotting, and running fault-injection reads from
// other goroutines. Run under -race this proves the registry is the
// single synchronized read path into the simulator's plain counters —
// the race the unsynchronized snapshot reads used to lose.
func TestMetricsScrapeRace(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(Options{
		Scheme: AriaHash, ExpectedKeys: 2000, Shards: 4, Seed: 5, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := testKey(w*1000 + i%1000)
				_ = st.Put(k, testValue(i))
				_, _ = st.Get(k)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf.Reset()
			_ = reg.WritePrometheus(&buf)
			_ = reg.Snapshot()
			_ = st.Stats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := st.(Corrupter)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.UntrustedSize()
			_ = c.SnapshotUntrusted()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := st.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsOverheadGuard is the CI benchmark guard: it measures the
// per-op wall cost of the Metrics=nil path against the raw engine (the
// pre-metrics baseline, still reachable as openStore) on a fig9-style
// read-heavy microbench and fails if the disabled path is more than 2%
// slower. Timing-sensitive, so it only runs when METRICS_GUARD=1 (the
// `make metrics-guard` CI step); min-of-rounds keeps scheduler noise
// out of both sides of the comparison.
func TestMetricsOverheadGuard(t *testing.T) {
	if os.Getenv("METRICS_GUARD") == "" {
		t.Skip("set METRICS_GUARD=1 to run the disabled-overhead benchmark guard")
	}
	const keys = 20000
	const opsPerRound = 200000
	const rounds = 5

	build := func(viaOpen bool) Store {
		opts := Options{Scheme: AriaHash, ExpectedKeys: keys, MeasureOff: true, Seed: 9}
		var st Store
		var err error
		if viaOpen {
			st, err = Open(opts)
		} else {
			st, err = openStore(optsWithDefaults(opts))
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			if err := st.Put(testKey(i), testValue(i)); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	measure := func(st Store) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			for i := 0; i < opsPerRound; i++ {
				if _, err := st.Get(testKey(i % keys)); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	raw := build(false)
	open := build(true)
	// Warm both paths once before timing.
	measure(raw)
	rawBest := measure(raw)
	openBest := measure(open)
	overhead := float64(openBest-rawBest) / float64(rawBest)
	t.Logf("raw=%v open(Metrics=nil)=%v overhead=%+.2f%%", rawBest, openBest, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("disabled-metrics path overhead %.2f%% exceeds 2%% budget (raw=%v open=%v)",
			overhead*100, rawBest, openBest)
	}
}
