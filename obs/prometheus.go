package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per metric family,
// then the family's series sorted by label set. Histograms emit
// cumulative <name>_bucket series with power-of-two `le` bounds (up to
// the highest non-empty bucket, then +Inf), plus <name>_sum and
// <name>_count. Output is deterministic for a given registry state, which
// the golden-file test relies on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.gather()
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
				return err
			}
			lastFamily = m.name
		}
		if err := writeSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.typ {
	case TypeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.lkey, m.counter.Load())
		return err
	case TypeGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.lkey,
			strconv.FormatFloat(m.gauge.Load(), 'g', -1, 64))
		return err
	case TypeHistogram:
		return writeHistogram(w, m)
	}
	return nil
}

// writeHistogram emits the cumulative bucket form Prometheus expects.
func writeHistogram(w io.Writer, m *metric) error {
	s := m.hist.Snapshot()
	top := -1
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		_, hi := bucketBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, withLE(m.lkey, strconv.FormatFloat(hi, 'g', -1, 64)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLE(m.lkey, "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, m.lkey, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.lkey, s.Count)
	return err
}

// withLE splices the `le` bucket-bound label into an encoded label set.
func withLE(lkey, le string) string {
	if lkey == "" {
		return `{le="` + le + `"}`
	}
	// lkey is `{a="1",...}`: insert before the closing brace.
	return lkey[:len(lkey)-1] + `,le="` + le + `"}`
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics (aria-server does this behind the
// -metrics-addr flag).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
