package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		name   string
		value  uint64
		bucket int
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"two", 2, 2},
		{"three", 3, 2},
		{"four", 4, 3},
		{"pow2-boundary-low", 1023, 10},
		{"pow2-boundary", 1024, 11},
		{"pow2-boundary-high", 2047, 11},
		{"large", 1 << 40, 41},
		{"max", math.MaxUint64, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			h.Record(tc.value)
			s := h.Snapshot()
			if s.Buckets[tc.bucket] != 1 {
				t.Fatalf("Record(%d): bucket %d count = %d, want 1 (buckets %v)",
					tc.value, tc.bucket, s.Buckets[tc.bucket], nonzero(s.Buckets))
			}
			if s.Count != 1 || s.Sum != tc.value || s.Max != tc.value {
				t.Fatalf("Record(%d): count=%d sum=%d max=%d", tc.value, s.Count, s.Sum, s.Max)
			}
		})
	}
}

func nonzero(b []uint64) map[int]uint64 {
	out := map[int]uint64{}
	for i, n := range b {
		if n > 0 {
			out[i] = n
		}
	}
	return out
}

func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		q       float64
		want    float64
		// tolerance as a fraction of want (log buckets are 2x-wide, so
		// exact-value tests use samples at bucket boundaries or rely on
		// max clamping).
		tol float64
	}{
		{"empty", nil, 0.5, 0, 0},
		{"single", []uint64{100}, 0.5, 100, 0},            // clamped to max
		{"single-p99", []uint64{100}, 0.99, 100, 0},       // clamped to max
		{"all-equal", []uint64{7, 7, 7, 7}, 0.95, 7, 0.1}, // within bucket [4,7]
		{"zeros", []uint64{0, 0, 0, 0}, 0.99, 0, 0},
		{"uniform-1-to-1024", ramp(1, 1024), 0.5, 512, 0.5},
		{"uniform-1-to-1024-p99", ramp(1, 1024), 0.99, 1013, 0.3},
		{"bimodal-p50", bimodal(100, 10, 100, 1000), 0.5, 10, 1.0},
		{"bimodal-p99", bimodal(100, 10, 100, 1000), 0.99, 1000, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.samples {
				h.Record(v)
			}
			got := h.Snapshot().Quantile(tc.q)
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("Quantile(%v) = %v, want 0", tc.q, got)
				}
				return
			}
			if diff := math.Abs(got-tc.want) / tc.want; diff > tc.tol {
				t.Fatalf("Quantile(%v) = %v, want %v ± %.0f%%", tc.q, got, tc.want, tc.tol*100)
			}
		})
	}
}

func ramp(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func bimodal(nLow int, low uint64, nHigh int, high uint64) []uint64 {
	var out []uint64
	for i := 0; i < nLow; i++ {
		out = append(out, low)
	}
	for i := 0; i < nHigh; i++ {
		out = append(out, high)
	}
	return out
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for v := uint64(1); v < 100000; v = v*3/2 + 1 {
		h.Record(v)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= float64(s.Max)) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%d", s.P50, s.P95, s.P99, s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := uint64(0); v < 1000; v++ {
		whole.Record(v)
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	m := a.Snapshot().Merge(b.Snapshot())
	w := whole.Snapshot()
	if m.Count != w.Count || m.Sum != w.Sum || m.Max != w.Max {
		t.Fatalf("merge: count/sum/max = %d/%d/%d, want %d/%d/%d",
			m.Count, m.Sum, m.Max, w.Count, w.Sum, w.Max)
	}
	for i := range w.Buckets {
		if m.Buckets[i] != w.Buckets[i] {
			t.Fatalf("merge: bucket %d = %d, want %d", i, m.Buckets[i], w.Buckets[i])
		}
	}
	if m.P99 != w.P99 {
		t.Fatalf("merge: p99 = %v, want %v", m.P99, w.P99)
	}
}

func TestRegistryLookupAndTypes(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests", Labels{"op": "get"})
	c2 := r.Counter("reqs_total", "requests", Labels{"op": "get"})
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c3 := r.Counter("reqs_total", "requests", Labels{"op": "put"})
	if c1 == c3 {
		t.Fatal("different labels must return distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name with a different type must panic")
		}
	}()
	r.Gauge("reqs_total", "requests", nil)
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil)
	c.Add(5)
	g.Set(3.5)
	h.Record(42)
	r.Reset()
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatalf("after Reset: counter=%d gauge=%v", c.Load(), g.Load())
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("after Reset: histogram %+v", s)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops", "", Labels{"shard": "0"}).Add(3)
	r.Counter("ops", "", Labels{"shard": "1"}).Add(4)
	r.Histogram("lat", "", Labels{"shard": "0", "op": "get"}).Record(8)
	r.Histogram("lat", "", Labels{"shard": "1", "op": "get"}).Record(16)
	r.Histogram("lat", "", Labels{"shard": "0", "op": "put"}).Record(1 << 30)
	snap := r.Snapshot()

	if v, ok := snap.Value("ops", nil); !ok || v != 7 {
		t.Fatalf("Value(ops) = %v, %v; want 7, true", v, ok)
	}
	if v, ok := snap.Value("ops", Labels{"shard": "1"}); !ok || v != 4 {
		t.Fatalf("Value(ops, shard=1) = %v, %v; want 4, true", v, ok)
	}
	h, ok := snap.Histogram("lat", Labels{"op": "get"})
	if !ok || h.Count != 2 || h.Max != 16 {
		t.Fatalf("Histogram(lat, op=get): ok=%v count=%d max=%d", ok, h.Count, h.Max)
	}
	if _, ok := snap.Value("missing", nil); ok {
		t.Fatal("Value(missing) reported found")
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	backing := 41.0
	r.RegisterCollector(func(emit Emit) {
		emit("live_value", "scrape-time value", TypeGauge, Labels{"shard": "0"}, backing)
		emit("live_count", "scrape-time counter", TypeCounter, nil, 9)
	})
	backing = 42
	snap := r.Snapshot()
	if v, ok := snap.Value("live_value", nil); !ok || v != 42 {
		t.Fatalf("collector gauge = %v, %v; want 42", v, ok)
	}
	if v, ok := snap.Value("live_count", nil); !ok || v != 9 {
		t.Fatalf("collector counter = %v, %v; want 9", v, ok)
	}
}

// TestRegistryConcurrency hammers every metric kind from many goroutines
// while snapshots and scrapes run; meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Record(seed * uint64(i))
				// Concurrent registration of the same series must be safe.
				r.Counter("c", "", nil).Add(0)
			}
		}(uint64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Snapshot().Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := g.Load(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
}
