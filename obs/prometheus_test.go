package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFixtureRegistry populates a registry with one metric of every kind,
// with fixed values, so the exposition output is fully deterministic.
func buildFixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("aria_ops_total", "Total store operations.", Labels{"op": "get", "shard": "0"}).Add(42)
	r.Counter("aria_ops_total", "Total store operations.", Labels{"op": "put", "shard": "0"}).Add(7)
	r.Gauge("aria_epc_used_bytes", "Allocated enclave heap bytes.", Labels{"shard": "0"}).Set(1048576)
	h := r.Histogram("aria_op_wall_ns", "Wall-clock op latency (ns).", Labels{"op": "get", "shard": "0"})
	h.Record(0)
	h.Record(1)
	h.Record(3)
	h.Record(900)
	h.Record(1024)
	r.Histogram("aria_op_sim_cycles", "Simulated-cycle op latency.", Labels{"op": "get", "shard": "0"})
	r.RegisterCollector(func(emit Emit) {
		emit("aria_keys", "Live key count.", TypeGauge, Labels{"shard": "0"}, 12)
		emit("aria_macs_total", "CMAC computations.", TypeCounter, Labels{"shard": "0"}, 99)
	})
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_metrics.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus output drifted from %s (set UPDATE_GOLDEN=1 to regenerate).\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}

// TestWritePrometheusFormat checks structural invariants independent of
// the golden file: every series line parses, TYPE precedes its series,
// and histogram bucket counts are cumulative and end with +Inf.
func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]string{}
	sawInf := false
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			t.Fatalf("series %q appears before its TYPE line (base %q, typed %v)", line, base, typed)
		}
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("series line without value: %q", line)
		}
	}
	if !sawInf {
		t.Fatal("histogram output lacks a +Inf bucket")
	}
	if typed["aria_op_wall_ns"] != "histogram" || typed["aria_ops_total"] != "counter" {
		t.Fatalf("unexpected TYPE map: %v", typed)
	}
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	buildFixtureRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "aria_ops_total{op=\"get\",shard=\"0\"} 42") {
		t.Fatalf("body missing expected series:\n%s", rec.Body.String())
	}
}
