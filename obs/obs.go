// Package obs is the observability subsystem of the reproduction: a
// dependency-free metrics registry with atomic counters, gauges, and
// log-bucketed latency histograms, exposed in Prometheus text format and
// as structured snapshots (expvar / BENCH_*.json).
//
// Design goals, in order:
//
//  1. Zero cost when disabled. Nothing in this package is consulted
//     unless a component was handed a *Registry; a nil registry means the
//     instrumented code path simply does not exist (aria.Open returns the
//     raw store, kvnet skips its counters entirely).
//  2. Cheap when enabled. Counters and histogram records are single
//     atomic operations; no locks, no allocation, no map lookups on the
//     hot path. All name/label resolution happens once, at registration.
//  3. Synchronized reads. Sources whose state is not atomic (the sgx
//     enclave simulator is plain single-threaded fields) publish through
//     a Collector that runs at scrape time under the source's own lock,
//     making the registry the single safe read path for live stores.
//
// The histogram uses power-of-two buckets (bucket i counts values v with
// bits.Len64(v) == i), which makes Record one subtraction and one atomic
// add, and still yields quantile estimates well within the 2x bucket
// resolution — plenty for the cycle- and nanosecond-scale latencies the
// store emits. See docs/OPERATIONS.md for the full metric catalogue.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type distinguishes the metric kinds the registry can hold.
type Type int

// Metric kinds, matching the Prometheus exposition types emitted for them.
const (
	// TypeCounter is a monotonically increasing count.
	TypeCounter Type = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a distribution over power-of-two buckets.
	TypeHistogram
)

// String returns the Prometheus exposition name of the type
// ("counter", "gauge", "histogram").
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Labels attaches constant dimensions to a metric series (e.g. op="get",
// shard="3"). Labels are fixed at registration; the hot path never touches
// them.
type Labels map[string]string

// encode renders labels deterministically ({a="1",b="2"}, keys sorted).
// An empty label set encodes to "".
func (l Labels) encode() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// clone copies a label set so callers can reuse their map.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// ---- Counter --------------------------------------------------------------------

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// reset zeroes the counter (start of a measured window).
func (c *Counter) reset() { c.v.Store(0) }

// ---- Gauge ----------------------------------------------------------------------

// Gauge is a float64 that can move in both directions. All methods are
// safe for concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// ---- Histogram ------------------------------------------------------------------

// histBuckets is the bucket count: bucket 0 holds exact zeros, bucket i
// (1..64) holds values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i.
const histBuckets = 65

// Histogram is a distribution of uint64 samples over power-of-two
// buckets. Record is two atomic adds plus one atomic max; quantiles are
// estimated at snapshot time by linear interpolation inside the bucket
// where the target rank falls, clamped to the observed maximum.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// reset zeroes every bucket (start of a measured window). Not atomic with
// respect to concurrent Record calls; callers quiesce writers first, as
// the bench harness does between warmup and the measured run.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot captures the histogram's current state. Concurrent Record
// calls may land between bucket reads; each bucket read is atomic and the
// snapshot is internally consistent enough for monitoring (counts can lag
// the sum by in-flight samples, never corrupt).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]uint64, histBuckets),
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram with the
// standard quantiles precomputed. It is the shape the bench harness
// serializes into BENCH_*.json.
type HistogramSnapshot struct {
	// Count is the number of recorded samples.
	Count uint64 `json:"count"`
	// Sum is the sum of all recorded samples.
	Sum uint64 `json:"sum"`
	// Max is the largest recorded sample (exact, not bucketed).
	Max uint64 `json:"max"`
	// P50 is the median estimate (log-bucket interpolation, clamped
	// to Max), and P95/P99 the matching tail quantiles.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"` // 95th-percentile estimate
	P99 float64 `json:"p99"` // 99th-percentile estimate
	// Buckets holds per-bucket counts; Buckets[i] counts samples v with
	// bits.Len64(v) == i. Excluded from JSON: quantiles carry the signal.
	Buckets []uint64 `json:"-"`
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, i-1) // 2^(i-1)
	hi = math.Ldexp(1, i) - 1
	return lo, hi
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// containing the target rank and interpolating linearly inside it. The
// estimate is clamped to [0, Max]; an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if float64(cum) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(cum-n)) / float64(n)
			v := lo + frac*(hi-lo)
			if mx := float64(s.Max); v > mx {
				v = mx
			}
			return v
		}
	}
	return float64(s.Max)
}

// Merge returns the combination of s and o, as if every sample recorded
// in either had been recorded in one histogram. The sharded store emits
// one histogram per shard; Merge produces the aggregate view.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
		Max:     s.Max,
		Buckets: make([]uint64, histBuckets),
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		if i < len(s.Buckets) {
			out.Buckets[i] += s.Buckets[i]
		}
		if i < len(o.Buckets) {
			out.Buckets[i] += o.Buckets[i]
		}
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out
}

// ---- Registry -------------------------------------------------------------------

// metric is one registered series: a name, a fixed label set, and exactly
// one of counter/gauge/histogram.
type metric struct {
	name    string
	help    string
	typ     Type
	labels  Labels
	lkey    string // labels.encode(), cached
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Emit publishes one collector-computed value at scrape time. Collectors
// may emit TypeCounter (monotonic, e.g. enclave event ledgers) or
// TypeGauge values; histograms are always registered statically.
type Emit func(name, help string, typ Type, labels Labels, value float64)

// Collector is a scrape-time callback: it reads state that is not safe to
// read lock-free (a live store's enclave counters) under whatever lock the
// source requires, and emits the values. Collectors run on every
// WritePrometheus and Snapshot call.
type Collector func(emit Emit)

// Registry holds a set of named metrics plus scrape-time collectors. The
// zero value is not usable; call NewRegistry. A nil *Registry must never
// be instrumented against — components treat nil as "metrics disabled"
// and skip registration entirely.
type Registry struct {
	mu         sync.Mutex
	metrics    []*metric
	byID       map[string]*metric
	familyType map[string]Type
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric), familyType: make(map[string]Type)}
}

// lookup returns the existing series for (name, labels) or registers a
// new one. Registering a family name with a different type than before
// panics: that is a programming error, not an operational condition.
func (r *Registry) lookup(name, help string, typ Type, labels Labels) *metric {
	lkey := labels.encode()
	id := name + lkey
	r.mu.Lock()
	defer r.mu.Unlock()
	if ft, ok := r.familyType[name]; ok && ft != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, ft))
	}
	r.familyType[name] = typ
	if m, ok := r.byID[id]; ok {
		return m
	}
	m := &metric{name: name, help: help, typ: typ, labels: labels.clone(), lkey: lkey}
	switch typ {
	case TypeCounter:
		m.counter = &Counter{}
	case TypeGauge:
		m.gauge = &Gauge{}
	case TypeHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.byID[id] = m
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, TypeCounter, labels).counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, TypeGauge, labels).gauge
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.lookup(name, help, TypeHistogram, labels).hist
}

// RegisterCollector adds a scrape-time callback. See Collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Reset zeroes every counter and histogram and sets every gauge to zero
// (start of a measured window — the bench harness calls it alongside
// Store.ResetStats). Collector-backed values are views of external state
// and are unaffected.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m.typ {
		case TypeCounter:
			m.counter.reset()
		case TypeGauge:
			m.gauge.Set(0)
		case TypeHistogram:
			m.hist.reset()
		}
	}
}

// SeriesPoint is one series in a Snapshot: the flattened value of a
// counter or gauge, or the histogram snapshot.
type SeriesPoint struct {
	// Name is the metric family name.
	Name string `json:"name"`
	// Labels is the series' fixed label set (may be empty).
	Labels Labels `json:"labels,omitempty"`
	// Type is the metric kind ("counter", "gauge", "histogram").
	Type string `json:"type"`
	// Value is the counter or gauge value (0 for histograms).
	Value float64 `json:"value"`
	// Histogram carries the distribution for histogram series.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot is a point-in-time copy of every series in a registry,
// including collector-emitted ones, sorted by name then label set. It is
// what `expvar` publishes and what the bench harness consumes.
type Snapshot struct {
	// Series lists every metric series, sorted by (name, labels).
	Series []SeriesPoint `json:"series"`
}

// Histogram returns the merged histogram across every series of the given
// family name (e.g. the per-shard op-latency histograms merged into the
// store-wide distribution), and whether any series matched. The optional
// match filter keeps only series whose labels contain every given pair.
func (s Snapshot) Histogram(name string, match Labels) (HistogramSnapshot, bool) {
	var out HistogramSnapshot
	found := false
	for _, sp := range s.Series {
		if sp.Name != name || sp.Histogram == nil {
			continue
		}
		if !labelsMatch(sp.Labels, match) {
			continue
		}
		if !found {
			out = *sp.Histogram
			found = true
			continue
		}
		out = out.Merge(*sp.Histogram)
	}
	return out, found
}

// Value returns the summed value across every counter/gauge series of the
// family, filtered like Histogram, and whether any series matched.
func (s Snapshot) Value(name string, match Labels) (float64, bool) {
	total, found := 0.0, false
	for _, sp := range s.Series {
		if sp.Name != name || sp.Histogram != nil {
			continue
		}
		if !labelsMatch(sp.Labels, match) {
			continue
		}
		total += sp.Value
		found = true
	}
	return total, found
}

func labelsMatch(have, want Labels) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// gather returns every series — static and collector-emitted — sorted by
// (name, label key). Collector callbacks run outside the registry lock so
// they may freely take source locks of their own.
func (r *Registry) gather() []*metric {
	r.mu.Lock()
	static := make([]*metric, len(r.metrics))
	copy(static, r.metrics)
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	out := static
	for _, c := range collectors {
		c(func(name, help string, typ Type, labels Labels, value float64) {
			m := &metric{name: name, help: help, typ: typ, labels: labels.clone(), lkey: labels.encode()}
			switch typ {
			case TypeGauge:
				m.gauge = &Gauge{}
				m.gauge.Set(value)
			default: // collectors may only emit scalars; treat as counter
				m.typ = TypeCounter
				m.counter = &Counter{}
				m.counter.Add(uint64(value))
			}
			out = append(out, m)
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].lkey < out[j].lkey
	})
	return out
}

// Snapshot captures every series, running collectors.
func (r *Registry) Snapshot() Snapshot {
	ms := r.gather()
	snap := Snapshot{Series: make([]SeriesPoint, 0, len(ms))}
	for _, m := range ms {
		sp := SeriesPoint{Name: m.name, Labels: m.labels, Type: m.typ.String()}
		switch m.typ {
		case TypeCounter:
			sp.Value = float64(m.counter.Load())
		case TypeGauge:
			sp.Value = m.gauge.Load()
		case TypeHistogram:
			h := m.hist.Snapshot()
			sp.Histogram = &h
		}
		snap.Series = append(snap.Series, sp)
	}
	return snap
}
