package aria

// Tests for the sealed durability wrapper: persistence across reopen,
// group commit, checkpoint/truncate, tamper handling under both
// integrity policies, sharded recovery, and the cost accounting of the
// sealing boundary. The exhaustive crash matrix lives in
// crash_matrix_test.go.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ariakv/aria/obs"
)

// durableOpts returns small-store options rooted at dir. Callers mutate
// the result for policy/fsync/shard variations.
func durableOpts(dir string) Options {
	return Options{
		Scheme:               AriaBPTree,
		EPCBytes:             32 << 20,
		ExpectedKeys:         2048,
		SecureCacheBytes:     1 << 20,
		PinBudgetBytes:       64 << 10,
		ShieldStoreRootBytes: 16 << 10,
		Seed:                 5,
		DataDir:              dir,
	}
}

func mustOpen(t *testing.T, opts Options) Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustClose(t *testing.T, st Store) {
	t.Helper()
	d, ok := st.(Durable)
	if !ok {
		t.Fatalf("store %T is not Durable", st)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// dump scans the whole keyspace into a map for state comparison.
func dump(t *testing.T, st Store) map[string]string {
	t.Helper()
	out := make(map[string]string)
	r, ok := st.(Ranger)
	if !ok {
		t.Fatalf("store %T has no Scan", st)
	}
	if err := r.Scan(nil, nil, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestDurablePersistsAcrossReopen(t *testing.T) {
	for _, scheme := range []Scheme{AriaHash, AriaBPTree} {
		t.Run(scheme.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := durableOpts(dir)
			opts.Scheme = scheme

			st := mustOpen(t, opts)
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				if err := st.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			for i := 0; i < 200; i += 3 {
				if err := st.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			mustClose(t, st)

			st2 := mustOpen(t, opts)
			defer mustClose(t, st2)
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v, err := st2.Get(k)
				if i%3 == 0 {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("deleted key %d resurrected: %v", i, err)
					}
					continue
				}
				if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
					t.Fatalf("get %d after reopen: %v", i, err)
				}
			}
			stats := st2.Stats()
			if stats.RecoveredRecords == 0 {
				t.Error("RecoveredRecords = 0 after replaying a WAL")
			}
			if stats.IntegrityFailures != 0 {
				t.Errorf("IntegrityFailures = %d on a clean log", stats.IntegrityFailures)
			}
		})
	}
}

func TestDurableBatchIsOneGroupCommit(t *testing.T) {
	st := mustOpen(t, durableOpts(t.TempDir()))
	defer mustClose(t, st)

	before := st.Stats()
	pairs := make([]KV, 50)
	for i := range pairs {
		pairs[i] = KV{Key: []byte(fmt.Sprintf("b-%03d", i)), Value: []byte("v")}
	}
	if errs := st.MPut(pairs); errs != nil {
		t.Fatalf("mput: %v", errs)
	}
	after := st.Stats()
	if got := after.WALAppends - before.WALAppends; got != 1 {
		t.Errorf("WALAppends delta = %d, want 1 (group commit)", got)
	}
	if got := after.WALRecords - before.WALRecords; got != 50 {
		t.Errorf("WALRecords delta = %d, want 50", got)
	}
	if got := after.WALFsyncs - before.WALFsyncs; got != 1 {
		t.Errorf("WALFsyncs delta = %d, want 1 under FsyncBatch", got)
	}

	// 50 singleton puts cost 50 appends and 50 fsyncs: the edge the
	// batch amortizes.
	before = after
	for i := range pairs {
		if err := st.Put([]byte(fmt.Sprintf("s-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	after = st.Stats()
	if got := after.WALFsyncs - before.WALFsyncs; got != 50 {
		t.Errorf("singleton WALFsyncs delta = %d, want 50", got)
	}
}

func TestDurableFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy FsyncPolicy
		want   uint64 // fsyncs for one 10-record batch
	}{
		{FsyncBatch, 1},
		{FsyncAlways, 10},
		{FsyncNever, 0},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			opts := durableOpts(t.TempDir())
			opts.Fsync = tc.policy
			st := mustOpen(t, opts)
			defer mustClose(t, st)
			pairs := make([]KV, 10)
			for i := range pairs {
				pairs[i] = KV{Key: []byte(fmt.Sprintf("k-%d", i)), Value: []byte("v")}
			}
			before := st.Stats().WALFsyncs
			if errs := st.MPut(pairs); errs != nil {
				t.Fatalf("mput: %v", errs)
			}
			if got := st.Stats().WALFsyncs - before; got != tc.want {
				t.Errorf("fsyncs = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	st := mustOpen(t, opts)

	putRange := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	ckpt := func() {
		t.Helper()
		if err := st.(Durable).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	count := func(pattern string) int {
		t.Helper()
		m, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}

	// First checkpoint: there is no previous snapshot generation, so the
	// full WAL stays as the fallback — one closed segment plus the fresh
	// active one, and one snapshot.
	putRange(0, 100)
	ckpt()
	if got := st.Stats().Checkpoints; got != 1 {
		t.Errorf("Checkpoints = %d, want 1", got)
	}
	if got := count("wal-*.log"); got != 2 {
		t.Errorf("segments after first checkpoint = %d, want 2 (previous generation retained)", got)
	}
	if got := count("snap-*.seal"); got != 1 {
		t.Errorf("snapshots after first checkpoint = %d, want 1", got)
	}

	// Second checkpoint: the store now retains two snapshot generations
	// and prunes WAL history only up to the older one, so a tampered
	// newest snapshot always leaves a working fallback.
	putRange(100, 120)
	ckpt()
	if got := count("snap-*.seal"); got != 2 {
		t.Errorf("snapshots after second checkpoint = %d, want 2 generations", got)
	}
	if got := count("wal-*.log"); got != 2 {
		t.Errorf("segments after second checkpoint = %d, want 2 (replay above the older snapshot)", got)
	}

	// Third checkpoint: the oldest generation is now obsolete and gets
	// pruned — retention stays bounded at two.
	putRange(120, 130)
	ckpt()
	if got := count("snap-*.seal"); got != 2 {
		t.Errorf("snapshots after third checkpoint = %d, want 2 (oldest pruned)", got)
	}
	if got := count("wal-*.log"); got != 2 {
		t.Errorf("segments after third checkpoint = %d, want 2 (oldest pruned)", got)
	}
	// A checkpoint with nothing new logged is a no-op, not a file churn.
	ckpt()
	if got := st.Stats().Checkpoints; got != 3 {
		t.Errorf("Checkpoints = %d, want 3 (empty checkpoint skipped)", got)
	}
	want := dump(t, st)
	mustClose(t, st)

	st2 := mustOpen(t, opts)
	defer mustClose(t, st2)
	got := dump(t, st2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
	// Snapshot restore + skip of already-covered WAL records, not a
	// 130-record replay.
	if rec := st2.Stats().RecoveredRecords; rec != 130 {
		t.Errorf("RecoveredRecords = %d, want 130 (snapshot pairs, nothing replayed)", rec)
	}
}

// TestDurableTamperedSnapshotFallsBack is the reason two snapshot
// generations are retained: flipping a byte in the newest snapshot must
// not cost any committed data. Under Quarantine the store comes up
// degraded but complete — older snapshot plus the retained WAL above it
// — and under FailStop the open refuses.
func TestDurableTamperedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.IntegrityPolicy = Quarantine
	st := mustOpen(t, opts)
	put := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 50)
	if err := st.(Durable).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put(50, 70)
	if err := st.(Durable).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put(70, 80) // tail records beyond the newest snapshot
	want := dump(t, st)
	mustClose(t, st)

	// Flip one byte in the newest snapshot.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.seal"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots = %v (err %v), want 2 generations", snaps, err)
	}
	newest := snaps[len(snaps)-1] // glob sorts ascending; highest covered last
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// FailStop: tampered snapshot refuses the open.
	fs := opts
	fs.IntegrityPolicy = FailStop
	if _, err := Open(fs); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("FailStop open of tampered snapshot: %v, want ErrIntegrity", err)
	}

	// Quarantine: degraded but with the complete committed state.
	st2 := mustOpen(t, opts)
	defer mustClose(t, st2)
	stats := st2.Stats()
	if stats.IntegrityFailures == 0 {
		t.Error("IntegrityFailures = 0 after skipping a tampered snapshot")
	}
	if stats.Health() != HealthDegraded {
		t.Errorf("Health = %v, want degraded", stats.Health())
	}
	if got := dump(t, st2); !mapsEqual(got, want) {
		t.Fatalf("fallback recovery lost data: %d keys recovered, want %d", len(got), len(want))
	}
}

// TestDurableRejectsUnframeableMaxKeySize pins the WAL framing guard: a
// durable store must refuse a MaxKeySize the uint16 key-length prefix
// cannot represent (silent key/value re-splitting on replay otherwise),
// while the purely in-memory store is free to allow it.
func TestDurableRejectsUnframeableMaxKeySize(t *testing.T) {
	opts := durableOpts(t.TempDir())
	opts.MaxKeySize = 1 << 16
	if _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "MaxKeySize") {
		t.Fatalf("durable Open with MaxKeySize 65536: err = %v, want framing-limit error", err)
	}
	opts.Shards = 2
	if _, err := Open(opts); err == nil {
		t.Fatal("sharded durable Open with MaxKeySize 65536 succeeded")
	}
	if _, err := encodeWalRecord(walOpPut, make([]byte, 1<<16), nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("encodeWalRecord oversize key: %v, want ErrTooLarge", err)
	}
}

func TestDurableBackgroundCheckpointer(t *testing.T) {
	opts := durableOpts(t.TempDir())
	opts.CheckpointEvery = 10
	st := mustOpen(t, opts)
	defer mustClose(t, st)

	for i := 0; i < 40; i++ {
		if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDurableTamperedWALFailStop(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	st := mustOpen(t, opts)
	for i := 0; i < 20; i++ {
		if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	mustClose(t, st)

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no wal segment written")
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(opts)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("FailStop open of tampered wal: err = %v, want ErrIntegrity", err)
	}
}

func TestDurableTamperedWALQuarantineSalvages(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.IntegrityPolicy = Quarantine
	st := mustOpen(t, opts)
	for i := 0; i < 20; i++ {
		if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	mustClose(t, st)

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the back half: a prefix must survive.
	data[len(data)*3/4] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, opts)
	defer mustClose(t, st2)
	stats := st2.Stats()
	if stats.IntegrityFailures == 0 {
		t.Error("IntegrityFailures = 0 after salvaging a tampered wal")
	}
	if stats.Health() != HealthDegraded {
		t.Errorf("Health = %v, want degraded", stats.Health())
	}
	if stats.RecoveredRecords == 0 {
		t.Error("no prefix salvaged")
	}
	// The salvaged store accepts new writes and survives another cycle.
	if err := st2.Put([]byte("after-salvage"), []byte("ok")); err != nil {
		t.Fatalf("put after salvage: %v", err)
	}
}

func TestDurableShardedRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.Shards = 4
	st := mustOpen(t, opts)
	for i := 0; i < 200; i++ {
		if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mustClose(t, st)

	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", i))); err != nil {
			t.Errorf("shard-%d lineage dir missing: %v", i, err)
		}
	}

	st2 := mustOpen(t, opts)
	defer mustClose(t, st2)
	for i := 0; i < 200; i++ {
		v, err := st2.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("get %d after sharded reopen: %v", i, err)
		}
	}
	if rec := st2.Stats().RecoveredRecords; rec != 200 {
		t.Errorf("aggregate RecoveredRecords = %d, want 200", rec)
	}
	if err := st2.(Durable).Checkpoint(); err != nil {
		t.Fatalf("sharded checkpoint: %v", err)
	}
	if ck := st2.Stats().Checkpoints; ck != 4 {
		t.Errorf("aggregate Checkpoints = %d, want 4 (one per shard)", ck)
	}
}

// TestDurableShardManifest pins the sealed shard manifest: a durable
// sharded store records its shard count in DataDir, and every reopen —
// with a different count, as an unsharded store, after the manifest is
// deleted, or after it is tampered with — fails loudly instead of
// recovering lineages under the wrong router and stranding keys.
func TestDurableShardManifest(t *testing.T) {
	newShardedDir := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		opts := durableOpts(dir)
		opts.Shards = 4
		st := mustOpen(t, opts)
		for i := 0; i < 40; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		mustClose(t, st)
		return dir
	}

	t.Run("shard-count-mismatch", func(t *testing.T) {
		dir := newShardedDir(t)
		opts := durableOpts(dir)
		opts.Shards = 2
		if _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "4-shard") {
			t.Fatalf("reopen with Shards=2 of a 4-shard dir: %v, want shard-count error", err)
		}
	})

	t.Run("unsharded-reopen", func(t *testing.T) {
		dir := newShardedDir(t)
		if _, err := Open(durableOpts(dir)); err == nil || !strings.Contains(err.Error(), "4-shard") {
			t.Fatalf("unsharded reopen of a 4-shard dir: %v, want shard-count error", err)
		}
	})

	t.Run("deleted-manifest", func(t *testing.T) {
		dir := newShardedDir(t)
		if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
			t.Fatal(err)
		}
		opts := durableOpts(dir)
		opts.Shards = 4
		if _, err := Open(opts); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("sharded reopen without manifest: %v, want ErrIntegrity", err)
		}
		// The unsharded path must refuse too: it would otherwise start an
		// empty top-level lineage over the shard subdirectories.
		if _, err := Open(durableOpts(dir)); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("unsharded reopen without manifest: %v, want ErrIntegrity", err)
		}
	})

	t.Run("tampered-manifest", func(t *testing.T) {
		dir := newShardedDir(t)
		path := filepath.Join(dir, manifestName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		opts := durableOpts(dir)
		opts.Shards = 4
		if _, err := Open(opts); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("reopen with tampered manifest: %v, want ErrIntegrity", err)
		}
	})

	t.Run("sharded-over-single", func(t *testing.T) {
		dir := t.TempDir()
		st := mustOpen(t, durableOpts(dir))
		if err := st.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		mustClose(t, st)
		opts := durableOpts(dir)
		opts.Shards = 4
		if _, err := Open(opts); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("sharded open of an unsharded dir: %v, want ErrIntegrity", err)
		}
		// The original unsharded layout stays manifest-free and reopens.
		st2 := mustOpen(t, durableOpts(dir))
		mustClose(t, st2)
	})
}

func TestDurableNotDurableSentinel(t *testing.T) {
	opts := durableOpts("")
	opts.DataDir = ""

	// Unsharded, unmetered: the semantics layer always exposes Durable
	// (Close stops its expiry sweeper), but Checkpoint reports the
	// sentinel because there is no lineage underneath.
	plain := mustOpen(t, opts)
	if err := plain.(Durable).Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("non-durable Checkpoint: %v, want ErrNotDurable", err)
	}
	if err := plain.(Durable).Close(); err != nil {
		t.Errorf("non-durable Close: %v, want nil no-op", err)
	}

	// Sharded: the router always exposes Durable and reports the
	// sentinel per shard.
	so := opts
	so.Shards = 2
	sh := mustOpen(t, so)
	if err := sh.(Durable).Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("sharded non-durable Checkpoint: %v, want ErrNotDurable", err)
	}
	if err := sh.(Durable).Close(); err != nil {
		t.Errorf("sharded non-durable Close: %v, want nil no-op", err)
	}
}

func TestDurableSealingIsCharged(t *testing.T) {
	base := durableOpts("")
	base.DataDir = ""
	dry := mustOpen(t, base)

	wet := mustOpen(t, durableOpts(t.TempDir()))
	defer mustClose(t, wet)

	run := func(st Store) Stats {
		for i := 0; i < 50; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats()
	}
	ds, ws := run(dry), run(wet)
	if ws.Ocalls <= ds.Ocalls {
		t.Errorf("durable Ocalls %d not above in-memory %d (sealing boundary unpriced)", ws.Ocalls, ds.Ocalls)
	}
	if ws.MACs <= ds.MACs {
		t.Errorf("durable MACs %d not above in-memory %d", ws.MACs, ds.MACs)
	}
	if ws.CTROps <= ds.CTROps {
		t.Errorf("durable CTROps %d not above in-memory %d", ws.CTROps, ds.CTROps)
	}
	if ws.SimCycles <= ds.SimCycles {
		t.Errorf("durable SimCycles %d not above in-memory %d", ws.SimCycles, ds.SimCycles)
	}
}

func TestDurableMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	opts := durableOpts(t.TempDir())
	opts.Metrics = reg
	st := mustOpen(t, opts)
	defer mustClose(t, st)

	for i := 0; i < 30; i++ {
		if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.(Durable).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		metricWALAppends, metricWALRecords, metricWALBytes,
		metricWALFsyncs, metricCheckpoints, metricCheckpointWallNs,
		metricRecoveredRecords,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s missing from scrape", family)
		}
	}
	if !strings.Contains(text, metricWALRecords+`{shard="0"} 30`) {
		t.Errorf("wal records total not 30 in scrape:\n%s", grepMetric(text, metricWALRecords))
	}
	if !strings.Contains(text, metricCheckpoints+`{shard="0"} 1`) {
		t.Errorf("checkpoints total not 1 in scrape:\n%s", grepMetric(text, metricCheckpoints))
	}
}

// grepMetric pulls one family's lines out of a scrape for error output.
func grepMetric(text, family string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, family) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
