package aria

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// Integrity-failure policy tests: FailStop preserves per-operation
// fail-fast semantics, Quarantine poisons tampered keys and keeps serving
// the rest, and Stats().Health() reflects the store's condition.

const policyKeys = 1000

func policyOptions(policy IntegrityPolicy) Options {
	return Options{
		Scheme:       AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: policyKeys,
		Seed:         21,
		// Disable the Secure Cache so every Get verifies untrusted memory:
		// with a warm cache a flipped byte may go unread and undetected,
		// which would make the victim search flaky.
		SecureCacheBytes: -1,
		IntegrityPolicy:  policy,
	}
}

func loadPolicyStore(t *testing.T, policy IntegrityPolicy) Store {
	t.Helper()
	st, err := Open(policyOptions(policy))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < policyKeys; i++ {
		if err := st.Put(policyKey(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func policyKey(i int) []byte { return []byte(fmt.Sprintf("atk-%06d", i)) }

// findNarrowCorruption searches (on a throwaway scout store with identical
// deterministic layout) for a single byte flip that breaks at least one
// but only a few keys. The arena is far larger than the live data, so the
// search walks the low offsets — where the allocator placed the hash
// directory — rather than sampling the whole arena. Returns the flip
// offset, or -1 if none was found.
func findNarrowCorruption(t *testing.T) int {
	t.Helper()
	st := loadPolicyStore(t, FailStop)
	cor := st.(Corrupter)
	limit := 65536
	if s := cor.UntrustedSize(); s < limit {
		limit = s
	}
	for off := 0; off < limit; off += 61 {
		cor.FlipUntrustedByte(off, 0xA5)
		broken := 0
		for i := 0; i < policyKeys; i++ {
			if _, err := st.Get(policyKey(i)); errors.Is(err, ErrIntegrity) {
				broken++
			}
		}
		cor.FlipUntrustedByte(off, 0xA5) // undo before deciding
		if broken >= 1 && broken <= 8 {
			return off
		}
	}
	return -1
}

// brokenSet probes every key once and returns those failing with
// ErrIntegrity.
func brokenSet(t *testing.T, st Store) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for i := 0; i < policyKeys; i++ {
		k := policyKey(i)
		_, err := st.Get(k)
		switch {
		case err == nil:
		case errors.Is(err, ErrIntegrity):
			out[string(k)] = true
		default:
			t.Fatalf("key %s: unexpected error %v", k, err)
		}
	}
	return out
}

func TestQuarantinePolicyDegradesNotDies(t *testing.T) {
	off := findNarrowCorruption(t)
	if off < 0 {
		t.Skip("no narrow single-flip corruption found at this seed")
	}
	st := loadPolicyStore(t, Quarantine)
	if st.Stats().Health() != HealthOK {
		t.Fatalf("pre-attack health = %v", st.Stats().Health())
	}
	cor := st.(Corrupter)
	cor.FlipUntrustedByte(off, 0x01)

	broken := brokenSet(t, st)
	if len(broken) == 0 {
		t.Skip("flip did not reproduce on the fresh store (layout drift)")
	}
	stats := st.Stats()
	if stats.QuarantinedKeys != len(broken) {
		t.Errorf("QuarantinedKeys = %d, want %d", stats.QuarantinedKeys, len(broken))
	}
	if stats.IntegrityFailures == 0 {
		t.Error("IntegrityFailures not counted")
	}
	if got := stats.Health(); got != HealthDegraded {
		t.Errorf("health = %v, want %v", got, HealthDegraded)
	}

	// Poisoned keys short-circuit with the quarantine sentinel; every
	// other key keeps serving — even after the attacker restores the
	// byte, because trust, once lost, does not silently return.
	cor.FlipUntrustedByte(off, 0x01) // attacker "undoes" the tamper
	for i := 0; i < policyKeys; i++ {
		k := policyKey(i)
		v, err := st.Get(k)
		if broken[string(k)] {
			if !errors.Is(err, ErrIntegrity) || !errors.Is(err, ErrQuarantined) {
				t.Fatalf("quarantined key %s: err = %v, want ErrIntegrity+ErrQuarantined", k, err)
			}
			if err := st.Put(k, []byte("x")); !errors.Is(err, ErrQuarantined) {
				t.Fatalf("quarantined key %s accepted Put: %v", k, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("healthy key %s failed after quarantine: %q %v", k, v, err)
		}
	}
	// Quarantine state is monotone: health stays degraded.
	if got := st.Stats().Health(); got != HealthDegraded {
		t.Errorf("post-restore health = %v, want %v", got, HealthDegraded)
	}
}

func TestFailStopPolicyStaysFailFast(t *testing.T) {
	off := findNarrowCorruption(t)
	if off < 0 {
		t.Skip("no narrow single-flip corruption found at this seed")
	}
	st := loadPolicyStore(t, FailStop)
	cor := st.(Corrupter)
	cor.FlipUntrustedByte(off, 0x01)

	broken := brokenSet(t, st)
	if len(broken) == 0 {
		t.Skip("flip did not reproduce on the fresh store (layout drift)")
	}
	stats := st.Stats()
	if got := stats.Health(); got != HealthFailed {
		t.Errorf("health = %v, want %v", got, HealthFailed)
	}
	if stats.QuarantinedKeys != 0 {
		t.Errorf("FailStop quarantined %d keys", stats.QuarantinedKeys)
	}
	// Untampered keys keep serving (detection never corrupts trusted
	// state), and the tampered key fails again on every access.
	for k := range broken {
		if _, err := st.Get([]byte(k)); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("tampered key %s: second Get = %v, want ErrIntegrity", k, err)
		}
		if errors.Is(func() error { _, err := st.Get([]byte(k)); return err }(), ErrQuarantined) {
			t.Fatalf("FailStop store quarantined key %s", k)
		}
	}
	// FailStop is stateless per key: restoring the byte restores reads,
	// unlike Quarantine.
	cor.FlipUntrustedByte(off, 0x01)
	for k := range broken {
		if _, err := st.Get([]byte(k)); err != nil {
			t.Fatalf("FailStop key %s still failing after restore: %v", k, err)
		}
	}
	// The failure record itself is sticky for operators.
	if got := st.Stats().Health(); got != HealthFailed {
		t.Errorf("health after restore = %v, want %v (sticky record)", got, HealthFailed)
	}
}

func TestHealthSurvivesStatsJSON(t *testing.T) {
	// kvnet ships Stats as JSON; the health inputs must round-trip so
	// remote clients can compute Health() identically.
	in := Stats{
		IntegrityPolicy:   Quarantine,
		IntegrityFailures: 3,
		QuarantinedKeys:   2,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Health() != HealthDegraded {
		t.Errorf("remote health = %v, want %v", out.Health(), HealthDegraded)
	}
	if out.Health() != in.Health() {
		t.Errorf("health changed across JSON: %v vs %v", out.Health(), in.Health())
	}
}

func TestBaselineAlwaysHealthy(t *testing.T) {
	st, err := Open(Options{Scheme: BaselineHash, EPCBytes: 16 << 20, ExpectedKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Health(); got != HealthOK {
		t.Errorf("baseline health = %v", got)
	}
}
