package aria

// The cold tier (Options.ColdCompress; DESIGN.md §15). Two mechanisms
// share the same compressor (internal/compress) and bolt onto the
// durable store:
//
//  1. Segment checkpoints. Instead of re-sealing the whole keyspace
//     into a snapshot on every checkpoint, the store writes an
//     immutable, sorted, compressed, sealed segment holding only the
//     keys written since the last checkpoint (tombstones for deletes),
//     and publishes a sealed set manifest naming the segments that
//     constitute the recovery point. When the set grows past
//     CompactEvery segments, a compaction rewrites every live key into
//     one segment and starts a fresh set. Checkpoint cost is O(dirty),
//     not O(keyspace) — the term that made large keyspaces fall off the
//     throughput cliff when checkpoints were raw snapshots.
//
//  2. Cold demotion. After each checkpoint, keys that were not touched
//     since the previous one are compressed and moved out of the
//     enclave-resident store into an untrusted cold area (modelled by
//     d.cold), shrinking resident bytes — index, Secure Cache and heap
//     pressure — so the EPC covers a larger hot set. Any later access
//     promotes the key back (decompress-on-miss) with its exact
//     version and expiry restored, so CAS/TTL/transaction semantics
//     are oblivious to demotion.
//
// Every byte that crosses the trust boundary is charged to the
// simulator: ChargeCompress/ChargeDecompress for the codec work, CTR +
// CMAC + SealOut/SealIn for sealing the (compressed) bytes — this is
// where compression honestly pays, since fewer sealed bytes cross.

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"

	"github.com/ariakv/aria/internal/compress"
	"github.com/ariakv/aria/internal/seal"
	"github.com/ariakv/aria/internal/segment"
	"github.com/ariakv/aria/wal"
)

// defaultCompactEvery bounds the segment set when Options.CompactEvery
// is left zero.
const defaultCompactEvery = 8

// coldRec is one demoted key: its value compressed under the demotion
// round's dictionary, plus the semantics-layer metadata that must
// survive the round trip exactly (a promoted key with a different
// version would break CAS; a lost deadline would break TTL).
type coldRec struct {
	comp   []byte
	rawLen int
	ver    uint64
	exp    int64
	raw    bool // value stored uncompressed (dictionary did not help)
	dict   *compress.Dict
}

// coldValue decodes one cold record back to its raw value, charging the
// decompression and the boundary copy of the compressed bytes.
func (d *durableStore) coldValue(rec coldRec) ([]byte, error) {
	value := rec.comp
	if !rec.raw {
		v, err := rec.dict.Decompress(rec.comp, rec.rawLen)
		if err != nil {
			// The cold area is process-private memory, so a defect here is
			// a logic bug, not host tampering — but serving a wrong value
			// would be worse than failing, so treat it as integrity loss.
			return nil, fmt.Errorf("%w: cold record corrupt: %v", ErrIntegrity, err)
		}
		value = v
	}
	if d.enc != nil {
		d.enc.SealIn(len(rec.comp) + seal.Overhead)
		d.enc.ChargeCTR(len(rec.comp))
		d.enc.ChargeMAC(len(rec.comp) + seal.Overhead)
		if !rec.raw {
			d.enc.ChargeDecompress(rec.rawLen)
		}
	}
	return value, nil
}

// ensureResidentLocked promotes key out of the cold tier if it was
// demoted, restoring its exact value, version, and expiry into the
// inner store. Every key-touching operation calls this first, so the
// rest of the durable layer never observes a demoted key. countMiss is
// set on read paths so ColdMisses means "read fell past the cold tier",
// not "fresh key inserted". Callers hold d.mu.
func (d *durableStore) ensureResidentLocked(key []byte, countMiss bool) error {
	if !d.coldCompress {
		return nil
	}
	d.touched[string(key)] = struct{}{}
	rec, ok := d.cold[string(key)]
	if !ok {
		if countMiss {
			if _, live := d.keys[string(key)]; !live {
				d.coldMisses++
			}
		}
		return nil
	}
	value, err := d.coldValue(rec)
	if err != nil {
		return err
	}
	if err := d.inner.(semantic).restorePair(key, value, rec.ver, rec.exp); err != nil {
		return fmt.Errorf("aria: promote cold key: %w", err)
	}
	d.coldHits++
	d.coldResident -= len(rec.comp)
	delete(d.cold, string(key))
	return nil
}

// ensureResidentRangeLocked promotes every cold key in [start, end)
// (nil end = unbounded) so a Scan over the inner store sees the whole
// keyspace. Callers hold d.mu.
func (d *durableStore) ensureResidentRangeLocked(start, end []byte) error {
	if !d.coldCompress || len(d.cold) == 0 {
		return nil
	}
	var hit []string
	for k := range d.cold {
		if string(start) <= k && (end == nil || k < string(end)) {
			hit = append(hit, k)
		}
	}
	sort.Strings(hit)
	for _, k := range hit {
		if err := d.ensureResidentLocked([]byte(k), false); err != nil {
			return err
		}
	}
	return nil
}

// valueOfLocked reads one live key's value and metadata wherever it
// resides — inner store or cold tier — without changing its residency.
// The checkpoint writer uses it so a checkpoint does not promote the
// whole keyspace. Callers hold d.mu.
func (d *durableStore) valueOfLocked(k string) (value []byte, ver uint64, exp int64, err error) {
	if rec, ok := d.cold[k]; ok {
		v, cerr := d.coldValue(rec)
		return v, rec.ver, rec.exp, cerr
	}
	v, err := d.inner.Get([]byte(k))
	if err != nil {
		return nil, 0, 0, err
	}
	ver, exp = d.inner.(semantic).metaOf([]byte(k))
	return v, ver, exp, nil
}

// noteWrite records a committed write in the shadow key set and, when
// the cold tier is on, in the dirty set the next incremental checkpoint
// persists. Callers hold d.mu.
func (d *durableStore) noteWrite(k string) {
	d.keys[k] = struct{}{}
	if d.coldCompress {
		d.dirty[k] = struct{}{}
		d.touched[k] = struct{}{}
	}
}

// noteDelete records a committed delete; the dirty set entry becomes a
// tombstone in the next segment. Callers hold d.mu.
func (d *durableStore) noteDelete(k string) {
	delete(d.keys, k)
	if d.coldCompress {
		d.dirty[k] = struct{}{}
		d.touched[k] = struct{}{}
		if rec, ok := d.cold[k]; ok {
			d.coldResident -= len(rec.comp)
			delete(d.cold, k)
		}
	}
}

// chargeSegmentWrite prices sealing one segment out of the enclave:
// compression of the raw payload, one CTR+CMAC per sealed record
// (header with dictionary, each block, trailer), the boundary copy of
// the whole file, and the fsync OCALL.
func (d *durableStore) chargeSegmentWrite(meta segment.Meta) {
	if d.enc == nil {
		return
	}
	d.enc.ChargeCompress(int(meta.RawBytes))
	d.enc.ChargeCTR(meta.DictBytes + 32)
	d.enc.ChargeMAC(meta.DictBytes + 32 + seal.Overhead)
	for _, n := range meta.BlockBytes {
		d.enc.ChargeCTR(n)
		d.enc.ChargeMAC(n + seal.Overhead)
	}
	d.enc.ChargeCTR(11)
	d.enc.ChargeMAC(11 + seal.Overhead)
	d.enc.SealOut(int(meta.FileBytes))
	d.enc.Ocall() // the segment fsync
}

// chargeSegmentRead prices the mirror image: unsealing and
// decompressing one segment during recovery.
func (d *durableStore) chargeSegmentRead(meta segment.Meta) {
	if d.enc == nil {
		return
	}
	d.enc.SealIn(int(meta.FileBytes))
	d.enc.ChargeCTR(meta.DictBytes + 32)
	d.enc.ChargeMAC(meta.DictBytes + 32 + seal.Overhead)
	for _, n := range meta.BlockBytes {
		d.enc.ChargeCTR(n)
		d.enc.ChargeMAC(n + seal.Overhead)
	}
	d.enc.ChargeCTR(11)
	d.enc.ChargeMAC(11 + seal.Overhead)
	d.enc.ChargeDecompress(int(meta.RawBytes))
}

// chargeSetWrite prices publishing one set manifest.
func (d *durableStore) chargeSetWrite(bytes int64) {
	if d.enc == nil {
		return
	}
	n := int(bytes)
	d.enc.ChargeCTR(n)
	d.enc.ChargeMAC(n)
	d.enc.SealOut(n)
	d.enc.Ocall()
}

// checkpointColdLocked is the segment-set checkpoint (the ColdCompress
// branch of checkpointLocked): rotate the WAL so the boundary aligns
// with a segment boundary, write one segment — incremental (dirty keys
// + tombstones) or, when the set is full, a compaction of every live
// key — publish the new set manifest, prune the generation before the
// previous one, and demote keys that have gone cold. Callers hold d.mu.
func (d *durableStore) checkpointColdLocked() error {
	covered := d.log.NextSeq() - 1
	if d.hasSet && covered == d.setCovered {
		return nil // nothing logged since the last segment
	}
	if err := d.log.Rotate(); err != nil {
		return fmt.Errorf("aria: checkpoint rotate: %w", err)
	}
	sm := d.inner.(semantic)
	full := !d.hasSet || len(d.segNames) >= d.compactEvery
	var col *segment.Collector
	addLive := func(col *segment.Collector, k string) error {
		v, ver, exp, err := d.valueOfLocked(k)
		switch {
		case err == nil:
			col.Add([]byte(k), encodeSnapValue(v, ver, exp), false)
		case errors.Is(err, ErrNotFound):
			// The shadow set can briefly overapproximate; skip.
		case errors.Is(err, ErrIntegrity) && d.policy == Quarantine:
			// A poisoned key has no trustworthy value to persist.
		default:
			return fmt.Errorf("aria: checkpoint read %q: %w", k, err)
		}
		return nil
	}
	if full {
		col = segment.NewCollector(len(d.keys))
		for k := range d.keys {
			if err := addLive(col, k); err != nil {
				return err
			}
		}
	} else {
		col = segment.NewCollector(len(d.dirty))
		for k := range d.dirty {
			if _, live := d.keys[k]; !live {
				col.Add([]byte(k), nil, true)
				continue
			}
			if err := addLive(col, k); err != nil {
				return err
			}
		}
	}
	meta, err := col.Load(d.dir, d.sealer, covered)
	if err != nil {
		return fmt.Errorf("aria: write segment: %w", err)
	}
	d.chargeSegmentWrite(meta)
	d.compRaw += uint64(meta.RawBytes)
	d.compOut += uint64(meta.CompBytes)
	d.dictBytes = meta.DictBytes
	if full {
		if d.hasSet {
			d.compactions++
		}
		d.segNames = []string{meta.Name}
		d.segBytes = meta.FileBytes
	} else {
		d.segNames = append(d.segNames, meta.Name)
		d.segBytes += meta.FileBytes
	}
	setBytes, err := segment.WriteSet(d.dir, d.sealer, covered, sm.clockVersion(), d.segNames)
	if err != nil {
		return fmt.Errorf("aria: write segment set: %w", err)
	}
	d.chargeSetWrite(setBytes)
	// Retention mirrors the snapshot path, but a generation is a SET:
	// prune keeps every segment a surviving manifest references, so
	// carried-forward segments are not double-counted against the
	// two-generation budget and compaction does not double disk usage.
	keep := uint64(0)
	if d.hasSet {
		keep = d.setCovered
	}
	if err := segment.Prune(d.dir, d.sealer, keep); err != nil {
		return fmt.Errorf("aria: prune segments: %w", err)
	}
	// Legacy raw snapshots (a lineage started without ColdCompress) age
	// out under the same floor.
	if err := wal.PruneSnapshots(d.dir, keep); err != nil {
		return fmt.Errorf("aria: prune snapshots: %w", err)
	}
	if err := d.log.TruncateThrough(keep); err != nil {
		return fmt.Errorf("aria: truncate wal: %w", err)
	}
	d.setCovered, d.hasSet = covered, true
	d.checkpoints++
	d.sinceCkpt = 0
	d.dirty = make(map[string]struct{})
	d.demoteColdLocked()
	d.touched = make(map[string]struct{})
	return nil
}

// demoteColdLocked moves keys that were not touched since the previous
// checkpoint out of the enclave-resident store into the compressed cold
// area. The round trains its own dictionary on the values it demotes
// (each cold record keeps a reference, so earlier rounds' records stay
// decodable), compresses, charges the seal-out of the compressed bytes,
// and deletes the resident copy — which is what actually returns index,
// heap, and Secure Cache space to the hot set. Callers hold d.mu.
func (d *durableStore) demoteColdLocked() {
	var cands []string
	for k := range d.keys {
		if _, hot := d.touched[k]; hot {
			continue
		}
		if _, already := d.cold[k]; already {
			continue
		}
		cands = append(cands, k)
	}
	if len(cands) == 0 {
		return
	}
	sort.Strings(cands) // deterministic demotion order → deterministic costs
	type pending struct {
		k   string
		v   []byte
		ver uint64
		exp int64
	}
	pend := make([]pending, 0, len(cands))
	samples := make([][]byte, 0, len(cands))
	sm := d.inner.(semantic)
	for _, k := range cands {
		v, err := d.inner.Get([]byte(k))
		if err != nil {
			continue // expired, vanished, or poisoned: leave as-is
		}
		ver, exp := sm.metaOf([]byte(k))
		pend = append(pend, pending{k, v, ver, exp})
		samples = append(samples, v)
	}
	if len(pend) == 0 {
		return
	}
	dict := compress.Train(samples)
	d.coldDict = dict
	d.dictBytes = dict.Bytes()
	for i := range pend {
		p := &pend[i]
		comp := dict.Compress(nil, p.v)
		raw := false
		if len(comp) >= len(p.v) {
			comp, raw = p.v, true
		}
		if d.enc != nil {
			d.enc.ChargeCompress(len(p.v))
			d.enc.SealOut(len(comp) + seal.Overhead)
			d.enc.ChargeCTR(len(comp))
			d.enc.ChargeMAC(len(comp) + seal.Overhead)
		}
		if err := d.inner.Delete([]byte(p.k)); err != nil {
			continue // could not evict: the key simply stays resident
		}
		d.cold[p.k] = coldRec{comp: comp, rawLen: len(p.v), ver: p.ver, exp: p.exp, raw: raw, dict: dict}
		d.coldResident += len(comp)
		d.compRaw += uint64(len(p.v))
		d.compOut += uint64(len(comp))
	}
}

// recoverSegments finds the newest valid segment set in dir and loads
// its merged state (members applied in order, tombstones shadowing).
// Under Quarantine a tampered manifest or member counts a recovery
// failure and falls back to the next older set; under FailStop it fails
// the Open. ok is false when no usable set exists.
func (d *durableStore) recoverSegments(dir string) (state map[string]segPairState, covered, clock uint64, names []string, bytes int64, ok bool, err error) {
	sets, serr := segment.Sets(dir)
	if serr != nil {
		return nil, 0, 0, nil, 0, false, fmt.Errorf("aria: list segment sets: %w", serr)
	}
	for _, ref := range sets {
		setCovered, setClock, members, rerr := segment.ReadSet(ref.Path, d.sealer)
		if rerr != nil {
			if d.policy != Quarantine {
				return nil, 0, 0, nil, 0, false, fmt.Errorf("%w: %w", ErrIntegrity, rerr)
			}
			d.recFailures++
			continue
		}
		st := make(map[string]segPairState)
		var total int64
		good := true
		for _, name := range members {
			meta, merr := segment.Read(filepath.Join(dir, name), d.sealer, func(p segment.Pair) error {
				if p.Tombstone {
					delete(st, string(p.Key))
					return nil
				}
				value, ver, exp, derr := decodeSnapValue(p.Value)
				if derr != nil {
					return derr
				}
				st[string(p.Key)] = segPairState{
					value: append([]byte(nil), value...), ver: ver, exp: exp,
				}
				return nil
			})
			if merr != nil {
				// A referenced member that is missing is tampering, not a
				// crash artifact: the manifest is published only after its
				// members are durable, so a vanished file means rollback.
				if !errors.Is(merr, segment.ErrTampered) && !errors.Is(merr, fs.ErrNotExist) {
					return nil, 0, 0, nil, 0, false, fmt.Errorf("aria: read segment: %w", merr)
				}
				if d.policy != Quarantine {
					return nil, 0, 0, nil, 0, false, fmt.Errorf("%w: %w", ErrIntegrity, merr)
				}
				d.recFailures++
				good = false
				break
			}
			d.chargeSegmentRead(meta)
			total += meta.FileBytes
		}
		if !good {
			continue // Quarantine: fall back to the previous generation
		}
		return st, setCovered, setClock, members, total, true, nil
	}
	return nil, 0, 0, nil, 0, false, nil
}

// segPairState is one key's merged recovery state across a segment set.
type segPairState struct {
	value []byte
	ver   uint64
	exp   int64
}
