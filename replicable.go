package aria

// Replication support surface. A durable store exposes its sealed WAL
// lineages to the repl package through Replicable: the publisher reads
// segment files straight off each shard's directory (the sealed bytes
// are the replication stream — see wal/stream.go), and a replica node
// applies verified payloads back through the normal write path with
// ApplyWALPayload so its own WAL re-seals the same operations under
// the same sequence numbers.

import (
	"errors"
	"fmt"
)

// Replicable is implemented by durable stores whose sealed WAL
// lineages can be shipped to replicas. A store opened without DataDir
// reports zero WAL shards, signaling that it cannot be replicated.
type Replicable interface {
	// WALShards returns the number of independent WAL lineages (one
	// per shard; zero when the store is not durable).
	WALShards() int
	// WALShardDir returns the directory holding shard i's segment and
	// snapshot files.
	WALShardDir(i int) string
	// WALShardNextSeq returns the next sequence number shard i's
	// lineage will assign; every record below it is committed.
	WALShardNextSeq(i int) uint64
	// SetCommitHook installs fn to run after every committed WAL
	// append on any shard. fn runs under a shard's write lock and must
	// not block; pass nil to clear.
	SetCommitHook(fn func())
}

// ApplyWALPayload applies one verified WAL record payload through st's
// normal write path, so a replica's own WAL logs the identical
// operation under the identical sequence number (each Put/Delete
// appends exactly one record). A Delete of a key the replica does not
// hold is a divergence — the primary logged an operation the replica's
// state cannot replay — and fails loudly instead of silently skipping
// a sequence number.
func ApplyWALPayload(st Store, payload []byte) error {
	op, key, value, err := decodeWalRecord(payload)
	if err != nil {
		return err
	}
	switch op {
	case walOpPut:
		return st.Put(key, value)
	case walOpDelete:
		if err := st.Delete(key); err != nil {
			if errors.Is(err, ErrNotFound) {
				return fmt.Errorf("%w: replicated delete of absent key (replica diverged)", ErrIntegrity)
			}
			return err
		}
		return nil
	case walOpPutTTL:
		// The record carries the absolute deadline the primary
		// committed; re-deriving it from a relative TTL on the replica's
		// clock would diverge, so the apply path takes it verbatim.
		exp, v, serr := splitTTLBody(value)
		if serr != nil {
			return serr
		}
		ea, ok := st.(expiryApplier)
		if !ok {
			return fmt.Errorf("aria: store %T cannot apply ttl records", st)
		}
		return ea.putExpireAbs(key, v, exp)
	case walOpTxn:
		// The whole transaction applies atomically and re-seals as one
		// record in the replica's own WAL, preserving the primary's
		// all-or-nothing guarantee downstream.
		writes, derr := decodeWalTxnBody(value)
		if derr != nil {
			return derr
		}
		ta, ok := st.(txnApplier)
		if !ok {
			return fmt.Errorf("aria: store %T cannot apply txn records", st)
		}
		return ta.applyTxnWrites(writes)
	default:
		return fmt.Errorf("aria: unknown wal op %d", op)
	}
}

// expiryApplier is the internal absolute-deadline write path replicas
// use: every wrapper in the stack forwards it down to the semantics
// layer (and the durable layer re-logs the identical record).
type expiryApplier interface {
	putExpireAbs(key, value []byte, exp int64) error
}

// txnApplier is the internal already-validated transaction apply path
// replicas use, mirroring expiryApplier.
type txnApplier interface {
	applyTxnWrites(writes []txnWrite) error
}

// InitDataDir prepares dir to be opened with the given seed and shard
// count, writing the sealed shard manifest a fresh sharded data
// directory requires. It is how a replica bootstraps an empty data
// directory before placing transferred snapshots into the per-shard
// lineage directories and calling Open. On a non-empty directory it
// verifies the manifest instead, exactly as Open does.
func InitDataDir(dir string, seed uint64, shards int) error {
	if shards < 1 {
		shards = 1
	}
	return checkShardManifest(dir, seed, shards)
}
