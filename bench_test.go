package aria_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/bench"
	"github.com/ariakv/aria/internal/workload"
)

// Two kinds of benchmarks live here:
//
//  1. Micro-benchmarks (BenchmarkGet*/BenchmarkPut*) drive individual store
//     operations for b.N iterations. Wall time measures the implementation;
//     the sim_Mops/s metric reports throughput on the simulated SGX clock,
//     which is what the paper's figures plot.
//
//  2. Figure benchmarks (BenchmarkFig* / BenchmarkTable1) each regenerate
//     one table or figure of the paper at a reduced scale, printing the
//     same rows the full-size `aria-bench -exp <id>` run produces. One
//     b.N iteration = one full experiment.

const (
	microKeys = 100000
	benchEPC  = 8 << 20
)

func microStore(b *testing.B, scheme aria.Scheme) (aria.Store, *workload.Generator) {
	b.Helper()
	st, err := aria.Open(aria.Options{
		Scheme:       scheme,
		EPCBytes:     benchEPC,
		ExpectedKeys: microKeys,
		MeasureOff:   true,
		Seed:         9,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(workload.Config{
		Keys: microKeys, Dist: workload.Zipfian, Skew: 0.99,
		ReadRatio: 1.0, ValueSize: 64, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < microKeys; i++ {
		if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
			b.Fatal(err)
		}
	}
	return st, gen
}

func reportSim(b *testing.B, st aria.Store) {
	s := st.Stats()
	if s.SimSeconds > 0 {
		b.ReportMetric(float64(b.N)/s.SimSeconds/1e6, "sim_Mops/s")
	}
}

func benchGet(b *testing.B, scheme aria.Scheme, dist workload.Dist) {
	st, _ := microStore(b, scheme)
	gen, err := workload.New(workload.Config{
		Keys: microKeys, Dist: dist, Skew: 0.99, ReadRatio: 1.0, ValueSize: 64, Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	var op workload.Op
	for i := 0; i < 20000; i++ { // warm the Secure Cache
		gen.Next(&op)
		if _, err := st.Get(op.Key); err != nil && err != aria.ErrNotFound {
			b.Fatal(err)
		}
	}
	st.SetMeasuring(true)
	st.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
		if _, err := st.Get(op.Key); err != nil && err != aria.ErrNotFound {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, st)
}

func benchPut(b *testing.B, scheme aria.Scheme) {
	st, _ := microStore(b, scheme)
	gen, err := workload.New(workload.Config{
		Keys: microKeys, Dist: workload.Zipfian, Skew: 0.99, ReadRatio: 0, ValueSize: 64, Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	var op workload.Op
	st.SetMeasuring(true)
	st.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
		if err := st.Put(op.Key, op.Value); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, st)
}

func BenchmarkGetAriaHashSkew(b *testing.B)    { benchGet(b, aria.AriaHash, workload.Zipfian) }
func BenchmarkGetAriaHashUniform(b *testing.B) { benchGet(b, aria.AriaHash, workload.Uniform) }
func BenchmarkGetAriaTreeSkew(b *testing.B)    { benchGet(b, aria.AriaTree, workload.Zipfian) }
func BenchmarkGetShieldStoreSkew(b *testing.B) { benchGet(b, aria.ShieldStoreScheme, workload.Zipfian) }
func BenchmarkGetNoCacheHashSkew(b *testing.B) { benchGet(b, aria.NoCacheHash, workload.Zipfian) }
func BenchmarkGetBaselineHash(b *testing.B)    { benchGet(b, aria.BaselineHash, workload.Zipfian) }

func BenchmarkPutAriaHash(b *testing.B)    { benchPut(b, aria.AriaHash) }
func BenchmarkPutAriaTree(b *testing.B)    { benchPut(b, aria.AriaTree) }
func BenchmarkPutShieldStore(b *testing.B) { benchPut(b, aria.ShieldStoreScheme) }

// ---- figure/table reproductions ------------------------------------------------

// benchParams returns the reduced-scale parameters used by the in-test
// figure reproductions. `aria-bench -exp <id> -scale 16` runs the same code
// at paper-representative scale.
func benchParams() bench.Params {
	return bench.Params{Scale: 512, Ops: 4000, Seed: 42}
}

// benchOut returns the writer experiment rows go to: verbose runs print
// them, quiet runs discard them.
func benchOut(b *testing.B) io.Writer {
	if testing.Verbose() {
		return benchWriter{b}
	}
	return io.Discard
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := e.Run(p, benchOut(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Motivation(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkTable1Comparison(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig9AriaHOverall(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10AriaTOverall(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11FacebookETC(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12Ablation(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13KeyspaceSweep(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14CacheSize(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15MerkleArity(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16aMultiTenant(b *testing.B)  { benchExperiment(b, "fig16a") }
func BenchmarkFig16bSkewness(b *testing.B)     { benchExperiment(b, "fig16b") }
func BenchmarkMemTableAnalysis(b *testing.B)   { benchExperiment(b, "memtab") }
func BenchmarkXShardScaling(b *testing.B)      { benchExperiment(b, "xshard") }

// BenchmarkLoadPhase measures bulk-load speed (Puts of fresh keys).
func BenchmarkLoadPhase(b *testing.B) {
	for _, scheme := range []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme} {
		b.Run(scheme.String(), func(b *testing.B) {
			st, err := aria.Open(aria.Options{
				Scheme:       scheme,
				EPCBytes:     benchEPC,
				ExpectedKeys: b.N + 1,
				MeasureOff:   true,
				Seed:         9,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Put([]byte(fmt.Sprintf("load-%012d", i)), []byte("payload-0123456789")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
