package aria

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Sharded-store tests: routing, aggregation rules (summed counters,
// slowest-shard clock, worst-of health), per-shard failure isolation, and
// the cross-shard merged Scan.

const shardTestKeys = 1000

func shardKey(i int) []byte { return []byte(fmt.Sprintf("shk-%06d", i)) }

func openShardedStore(t *testing.T, opts Options) Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func loadShardedStore(t *testing.T, opts Options) Store {
	t.Helper()
	st := openShardedStore(t, opts)
	for i := 0; i < shardTestKeys; i++ {
		if err := st.Put(shardKey(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func shardedOptions(shards int) Options {
	return Options{
		Scheme:       AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: shardTestKeys,
		Seed:         31,
		Shards:       shards,
	}
}

func TestShardsOneIsPlainStore(t *testing.T) {
	// Shards <= 1 must take exactly today's code path: a single-enclave
	// store with no routing layer on top.
	for _, n := range []int{0, 1} {
		opts := shardedOptions(n)
		st := openShardedStore(t, opts)
		if _, ok := st.(Sharded); ok {
			t.Fatalf("Shards=%d produced a sharded store", n)
		}
		if cs, ok := st.(ConcurrentStore); ok && cs.ConcurrentSafe() {
			t.Fatalf("Shards=%d store claims concurrency safety", n)
		}
	}
}

func TestShardedRoundTripAndRouting(t *testing.T) {
	st := loadShardedStore(t, shardedOptions(4))
	sh := st.(Sharded)
	if sh.NumShards() != 4 {
		t.Fatalf("NumShards = %d", sh.NumShards())
	}
	used := make(map[int]int)
	for i := 0; i < shardTestKeys; i++ {
		k := shardKey(i)
		v, err := st.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("get %s = %q, %v", k, v, err)
		}
		idx := sh.ShardFor(k)
		if idx < 0 || idx >= 4 {
			t.Fatalf("ShardFor out of range: %d", idx)
		}
		used[idx]++
	}
	if len(used) != 4 {
		t.Errorf("1000 keys landed on only %d of 4 shards: %v", len(used), used)
	}
	// Deletes route the same way.
	if err := st.Delete(shardKey(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(shardKey(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key get = %v", err)
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	st := loadShardedStore(t, shardedOptions(4))
	for i := 0; i < 200; i++ {
		if _, err := st.Get(shardKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := st.(Sharded)
	var sumGets, sumPuts, sumCycles, maxCycles uint64
	var sumKeys int
	for i := 0; i < sh.NumShards(); i++ {
		ss := sh.ShardStats(i)
		sumGets += ss.Gets
		sumPuts += ss.Puts
		sumKeys += ss.Keys
		sumCycles += ss.SimCycles
		if ss.SimCycles > maxCycles {
			maxCycles = ss.SimCycles
		}
	}
	agg := st.Stats()
	if agg.Gets != sumGets || agg.Gets != 200 {
		t.Errorf("aggregate Gets = %d, shard sum %d, want 200", agg.Gets, sumGets)
	}
	if agg.Puts != sumPuts || agg.Puts != shardTestKeys {
		t.Errorf("aggregate Puts = %d, shard sum %d, want %d", agg.Puts, sumPuts, shardTestKeys)
	}
	if agg.Keys != sumKeys || agg.Keys != shardTestKeys {
		t.Errorf("aggregate Keys = %d, shard sum %d, want %d", agg.Keys, sumKeys, shardTestKeys)
	}
	// Shards execute in parallel: the aggregate clock is the straggler's,
	// not the sum of sequentialized shards.
	if agg.SimCycles != maxCycles {
		t.Errorf("aggregate SimCycles = %d, want slowest shard %d", agg.SimCycles, maxCycles)
	}
	if agg.SimCycles >= sumCycles {
		t.Errorf("aggregate clock (%d) not smaller than serialized sum (%d)", agg.SimCycles, sumCycles)
	}
	if agg.Health() != HealthOK {
		t.Errorf("healthy store reports %v", agg.Health())
	}
}

// findShardCorruption searches one shard's untrusted arena (via the
// concatenated Corrupter address space) for a single-byte flip that
// breaks at least one but only a few keys — the same scout technique as
// the integrity-policy tests, aimed at exactly one shard.
func findShardCorruption(t *testing.T, opts Options, victim int) int {
	t.Helper()
	st := loadShardedStore(t, opts)
	cor := st.(Corrupter)
	base := 0
	ss := st.(*shardedStore)
	for i := 0; i < victim; i++ {
		base += ss.shards[i].(Corrupter).UntrustedSize()
	}
	limit := 65536
	if n := ss.shards[victim].(Corrupter).UntrustedSize(); n < limit {
		limit = n
	}
	for off := 0; off < limit; off += 61 {
		cor.FlipUntrustedByte(base+off, 0xA5)
		broken := 0
		for i := 0; i < shardTestKeys; i++ {
			if _, err := st.Get(shardKey(i)); errors.Is(err, ErrIntegrity) {
				broken++
			}
		}
		cor.FlipUntrustedByte(base+off, 0xA5) // undo before deciding
		if broken >= 1 && broken <= 8 {
			return base + off
		}
	}
	return -1
}

func TestShardedQuarantineIsolation(t *testing.T) {
	opts := shardedOptions(4)
	// Disable the Secure Cache so every Get verifies untrusted memory
	// (same reasoning as the single-store policy tests).
	opts.SecureCacheBytes = -1
	opts.IntegrityPolicy = Quarantine
	const victim = 3
	off := findShardCorruption(t, opts, victim)
	if off < 0 {
		t.Skip("no narrow single-flip corruption found at this seed")
	}

	st := loadShardedStore(t, opts)
	st.(Corrupter).FlipUntrustedByte(off, 0x01)

	sh := st.(Sharded)
	broken := make(map[string]bool)
	for i := 0; i < shardTestKeys; i++ {
		k := shardKey(i)
		_, err := st.Get(k)
		switch {
		case err == nil:
		case errors.Is(err, ErrIntegrity):
			broken[string(k)] = true
			if got := sh.ShardFor(k); got != victim {
				t.Fatalf("tampered shard %d broke key %s of shard %d", victim, k, got)
			}
		default:
			t.Fatalf("key %s: unexpected error %v", k, err)
		}
	}
	if len(broken) == 0 {
		t.Skip("flip did not reproduce on the fresh store (layout drift)")
	}

	// Aggregate: degraded, with the poisoned set counted once.
	agg := st.Stats()
	if agg.Health() != HealthDegraded {
		t.Errorf("aggregate health = %v, want %v", agg.Health(), HealthDegraded)
	}
	if agg.QuarantinedKeys != len(broken) {
		t.Errorf("aggregate QuarantinedKeys = %d, want %d", agg.QuarantinedKeys, len(broken))
	}
	if agg.IntegrityFailures == 0 {
		t.Error("aggregate IntegrityFailures not counted")
	}

	// Isolation: shards 0..2 report their own health as OK and keep
	// serving every one of their keys; only the victim is degraded.
	var sumQuarantined int
	var sumFailures uint64
	for i := 0; i < sh.NumShards(); i++ {
		ss := sh.ShardStats(i)
		sumQuarantined += ss.QuarantinedKeys
		sumFailures += ss.IntegrityFailures
		if i == victim {
			if ss.Health() != HealthDegraded {
				t.Errorf("victim shard %d health = %v", i, ss.Health())
			}
			continue
		}
		if ss.Health() != HealthOK {
			t.Errorf("untouched shard %d health = %v", i, ss.Health())
		}
		if ss.QuarantinedKeys != 0 {
			t.Errorf("untouched shard %d quarantined %d keys", i, ss.QuarantinedKeys)
		}
	}
	if agg.QuarantinedKeys != sumQuarantined || agg.IntegrityFailures != sumFailures {
		t.Errorf("aggregate (%d keys, %d failures) != shard sums (%d, %d)",
			agg.QuarantinedKeys, agg.IntegrityFailures, sumQuarantined, sumFailures)
	}

	// Every key outside the poisoned set still serves, including the
	// victim shard's untampered keys.
	for i := 0; i < shardTestKeys; i++ {
		k := shardKey(i)
		v, err := st.Get(k)
		if broken[string(k)] {
			if !errors.Is(err, ErrQuarantined) {
				t.Fatalf("poisoned key %s: err = %v, want ErrQuarantined", k, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("healthy key %s failed during quarantine: %q %v", k, v, err)
		}
	}
}

func TestShardedVerifyIntegrityAuditsAllShards(t *testing.T) {
	opts := shardedOptions(4)
	opts.SecureCacheBytes = -1
	st := loadShardedStore(t, opts)
	if err := st.VerifyIntegrity(); err != nil {
		t.Fatalf("clean store failed audit: %v", err)
	}
	// Damage the last shard's arena; the joined audit must still surface
	// ErrIntegrity even though shards 0..2 pass.
	ss := st.(*shardedStore)
	base := 0
	for i := 0; i < 3; i++ {
		base += ss.shards[i].(Corrupter).UntrustedSize()
	}
	tampered := false
	for off := 0; off < 65536; off += 127 {
		st.(Corrupter).FlipUntrustedByte(base+off, 0xFF)
		if err := st.VerifyIntegrity(); errors.Is(err, ErrIntegrity) {
			tampered = true
			break
		}
		st.(Corrupter).FlipUntrustedByte(base+off, 0xFF) // undo and keep looking
	}
	if !tampered {
		t.Skip("no audit-visible flip found at this seed")
	}
}

func TestShardedConcurrentOps(t *testing.T) {
	// The per-shard locks must make the whole store goroutine-safe; the
	// race detector turns any violation into a failure.
	st := loadShardedStore(t, shardedOptions(4))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := shardKey((g*300 + i) % shardTestKeys)
				if i%3 == 0 {
					if err := st.Put(k, []byte("w")); err != nil {
						errs <- err
						return
					}
				} else if _, err := st.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
				if i%97 == 0 {
					_ = st.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.Stats().Keys != shardTestKeys {
		t.Errorf("keys after concurrent churn = %d", st.Stats().Keys)
	}
}

// ---- cross-shard Scan -----------------------------------------------------------

func scanKey(i int) []byte { return []byte(fmt.Sprintf("sck-%06d", i)) }

func loadScanStore(t *testing.T, shards int) Store {
	t.Helper()
	st := openShardedStore(t, Options{
		Scheme:       AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 600,
		Seed:         13,
		Shards:       shards,
	})
	for i := 0; i < 600; i++ {
		if err := st.Put(scanKey(i), []byte(fmt.Sprintf("sv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestShardedScanGlobalOrder(t *testing.T) {
	st := loadScanStore(t, 4)
	r := st.(Ranger)
	var got []string
	prev := ""
	seen := make(map[string]bool)
	err := r.Scan(nil, nil, func(k, v []byte) bool {
		ks := string(k)
		if seen[ks] {
			t.Fatalf("duplicate key %q delivered", ks)
		}
		if prev != "" && ks <= prev {
			t.Fatalf("order violated: %q after %q", ks, prev)
		}
		seen[ks] = true
		prev = ks
		got = append(got, ks)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 600 {
		t.Fatalf("scan delivered %d keys, want 600", len(got))
	}
	for i, ks := range got {
		if ks != string(scanKey(i)) {
			t.Fatalf("key %d = %q, want %q", i, ks, scanKey(i))
		}
	}
}

func TestShardedScanRangeAndEarlyStop(t *testing.T) {
	st := loadScanStore(t, 4)
	r := st.(Ranger)
	// Bounded range: [100, 160).
	var got []string
	if err := r.Scan(scanKey(100), scanKey(160), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 || got[0] != string(scanKey(100)) || got[59] != string(scanKey(159)) {
		t.Fatalf("range scan = %d keys [%s..%s]", len(got), got[0], got[len(got)-1])
	}
	// Early stop: the callback's false return ends the merge cleanly.
	n := 0
	if err := r.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return n < 37
	}); err != nil {
		t.Fatal(err)
	}
	if n != 37 {
		t.Errorf("early stop delivered %d pairs, want 37", n)
	}
}

func TestShardedScanValuesIntact(t *testing.T) {
	st := loadScanStore(t, 2)
	r := st.(Ranger)
	if err := r.Scan(nil, nil, func(k, v []byte) bool {
		var i int
		if _, err := fmt.Sscanf(string(k), "sck-%06d", &i); err != nil {
			t.Fatalf("unparseable key %q", k)
		}
		if string(v) != fmt.Sprintf("sv-%d", i) {
			t.Fatalf("key %q carries value %q", k, v)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedScanUnsupportedSchemes(t *testing.T) {
	// Hash indexes have no order; the sharded wrapper must preserve the
	// exact ErrNoScan sentinel through the merge.
	for _, scheme := range []Scheme{AriaHash, ShieldStoreScheme, BaselineHash} {
		st := openShardedStore(t, Options{
			Scheme: scheme, EPCBytes: 16 << 20, ExpectedKeys: 64, Shards: 2,
		})
		r, ok := st.(Ranger)
		if !ok {
			t.Fatalf("%v: sharded store lost the Ranger surface", scheme)
		}
		if err := r.Scan(nil, nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrNoScan) {
			t.Errorf("%v: scan error = %v, want ErrNoScan", scheme, err)
		}
	}
}

func TestShardedEcallChargesSpread(t *testing.T) {
	st := openShardedStore(t, shardedOptions(4))
	ec := st.(EdgeCaller)
	for i := 0; i < 40; i++ {
		ec.ChargeEcall()
	}
	agg := st.Stats()
	if agg.Ecalls < 40 {
		t.Errorf("aggregate Ecalls = %d, want >= 40", agg.Ecalls)
	}
	sh := st.(Sharded)
	for i := 0; i < 4; i++ {
		if got := sh.ShardStats(i).Ecalls; got < 10 {
			t.Errorf("shard %d received %d of 40 round-robin charges", i, got)
		}
	}
}
