package main

// Tests for the -watch output formatting: column layout, rate
// computation from sample deltas, hit-ratio fallback, and the
// durability columns (wsync/s, ckpts) fed by the WAL metric families.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/ccache"
)

// scriptedBackend replays a fixed sequence of Stats samples, one per
// call, so watchStats output is deterministic.
type scriptedBackend struct {
	samples []aria.Stats
	errAt   int // return an error on the i-th call (-1: never)
	calls   int
}

func (b *scriptedBackend) Stats() (aria.Stats, error) {
	i := b.calls
	b.calls++
	if b.errAt >= 0 && i == b.errAt {
		return aria.Stats{}, aria.ErrNotDurable
	}
	if i >= len(b.samples) {
		i = len(b.samples) - 1
	}
	return b.samples[i], nil
}

func (b *scriptedBackend) Put(k, v []byte) error        { return nil }
func (b *scriptedBackend) Get(k []byte) ([]byte, error) { return nil, aria.ErrNotFound }
func (b *scriptedBackend) Delete(k []byte) error        { return nil }
func (b *scriptedBackend) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	return aria.ErrNoScan
}
func (b *scriptedBackend) Checkpoint() error { return aria.ErrNotDurable }
func (b *scriptedBackend) Verify() error     { return nil }

func TestWatchLineFormatsDurabilityColumns(t *testing.T) {
	prev := aria.Stats{
		Gets: 100, Puts: 50, Deletes: 10,
		CacheHits: 80, CacheMisses: 20,
		PageSwaps: 5, WALFsyncs: 40, Checkpoints: 1, Keys: 900,
	}
	cur := aria.Stats{
		Gets: 300, Puts: 150, Deletes: 30,
		CacheHits: 170, CacheMisses: 30, // delta 90/100 hits → 90.0%
		PageSwaps: 15, WALFsyncs: 140, Checkpoints: 3, Keys: 1000,
	}
	line := watchLine(prev, cur, time.Second, 3*time.Second)

	fields := strings.Fields(line)
	// gets/s puts/s dels/s hit% swaps/s wsync/s ckpts keys lag gen health [elapsed]
	want := []string{"200", "100", "20", "90.0", "10", "100", "3", "1000", "0", "-"}
	if len(fields) < len(want) {
		t.Fatalf("line has %d fields, want at least %d: %q", len(fields), len(want), line)
	}
	for i, w := range want {
		if fields[i] != w {
			t.Errorf("field %d = %q, want %q (line %q)", i, fields[i], w, line)
		}
	}
	if !strings.Contains(line, "[3s]") {
		t.Errorf("line %q missing elapsed marker [3s]", line)
	}
}

func TestWatchLineZeroDurabilityOnNonDurableStore(t *testing.T) {
	prev := aria.Stats{Gets: 10}
	cur := aria.Stats{Gets: 20, CacheHits: 1}
	line := watchLine(prev, cur, time.Second, time.Second)
	fields := strings.Fields(line)
	if len(fields) < 8 {
		t.Fatalf("line has %d fields: %q", len(fields), line)
	}
	if fields[5] != "0" || fields[6] != "0" {
		t.Errorf("non-durable store should show wsync/s=0 ckpts=0, got %q %q (line %q)",
			fields[5], fields[6], line)
	}
}

func TestWatchLineReplicationColumns(t *testing.T) {
	// A replica behind the primary shows its apply lag and its sealed
	// generation prefixed with the role initial.
	cur := aria.Stats{Keys: 5, ReplRole: "replica", ReplGeneration: 3, ReplLag: 12}
	line := watchLine(aria.Stats{}, cur, time.Second, time.Second)
	fields := strings.Fields(line)
	if len(fields) < 10 {
		t.Fatalf("line has %d fields: %q", len(fields), line)
	}
	if fields[8] != "12" || fields[9] != "r3" {
		t.Errorf("lag/gen columns = %q %q, want 12 r3 (line %q)", fields[8], fields[9], line)
	}

	// Primary and fenced roles keep the same cell shape.
	if got := genCell(aria.Stats{ReplRole: "primary", ReplGeneration: 7}); got != "p7" {
		t.Errorf("primary genCell = %q, want p7", got)
	}
	if got := genCell(aria.Stats{ReplRole: "fenced", ReplGeneration: 2}); got != "f2" {
		t.Errorf("fenced genCell = %q, want f2", got)
	}
	if got := genCell(aria.Stats{}); got != "-" {
		t.Errorf("non-replicated genCell = %q, want -", got)
	}
}

func TestWatchLineColdTierColumns(t *testing.T) {
	// Inactive cold tier: the block is inert dashes, not zeroes.
	line := watchLine(aria.Stats{}, aria.Stats{Gets: 1}, time.Second, time.Second)
	fields := strings.Fields(line)
	if len(fields) < 13 {
		t.Fatalf("line has %d fields: %q", len(fields), line)
	}
	if fields[10] != "-" || fields[11] != "-" || fields[12] != "-" {
		t.Errorf("inactive cold columns = %q %q %q, want dashes (line %q)",
			fields[10], fields[11], fields[12], line)
	}

	// Active: resident KiB, compression ratio, segment count.
	cur := aria.Stats{
		ColdKeys: 12, ColdBytes: 8 << 10,
		CompRawBytes: 1000, CompBytes: 400, Segments: 3,
	}
	line = watchLine(aria.Stats{}, cur, time.Second, time.Second)
	fields = strings.Fields(line)
	if fields[10] != "8" || fields[11] != "0.40" || fields[12] != "3" {
		t.Errorf("cold columns = %q %q %q, want 8 0.40 3 (line %q)",
			fields[10], fields[11], fields[12], line)
	}
}

func TestWatchLineHitRatioFallsBackToLifetime(t *testing.T) {
	// No cache traffic between samples: the hit% column must fall back
	// to the lifetime ratio instead of dividing by zero.
	prev := aria.Stats{CacheHits: 75, CacheMisses: 25, CacheHitRatio: 0.75}
	cur := aria.Stats{CacheHits: 75, CacheMisses: 25, CacheHitRatio: 0.75}
	line := watchLine(prev, cur, time.Second, time.Second)
	if !strings.Contains(line, "75.0") {
		t.Errorf("expected lifetime hit ratio 75.0 in line %q", line)
	}
}

func TestWatchStatsHeaderAndRows(t *testing.T) {
	be := &scriptedBackend{
		errAt: -1,
		samples: []aria.Stats{
			{Gets: 0, WALFsyncs: 0},
			{Gets: 7, WALFsyncs: 2, Checkpoints: 1, Keys: 7},
			{Gets: 14, WALFsyncs: 4, Checkpoints: 1, Keys: 14},
		},
	}
	var buf bytes.Buffer
	watchStats(&buf, be, time.Millisecond, 2)
	out := buf.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if lines[0] != watchHeader {
		t.Errorf("header = %q, want %q", lines[0], watchHeader)
	}
	for _, col := range []string{"gets/s", "wsync/s", "ckpts", "lag", "gen", "health"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing column %q: %q", col, lines[0])
		}
	}
	// Rates are per interval (1ms), so a delta of 7 gets prints 7000/s.
	if !strings.Contains(lines[1], "7000") {
		t.Errorf("row 1 missing 7000 gets/s: %q", lines[1])
	}
	if !strings.Contains(lines[1], "2000") {
		t.Errorf("row 1 missing 2000 wsync/s: %q", lines[1])
	}
	if be.calls != 3 {
		t.Errorf("backend sampled %d times, want 3", be.calls)
	}
}

func TestWatchStatsReportsBackendError(t *testing.T) {
	be := &scriptedBackend{errAt: 1, samples: []aria.Stats{{}}}
	var buf bytes.Buffer
	watchStats(&buf, be, time.Millisecond, 5)
	out := buf.String()
	if !strings.Contains(out, "error:") {
		t.Fatalf("expected error report, got:\n%s", out)
	}
	if be.calls != 2 {
		t.Errorf("watch should stop on the first failed sample; sampled %d times", be.calls)
	}
}

func TestWatchStatsErrorOnFirstSample(t *testing.T) {
	be := &scriptedBackend{errAt: 0}
	var buf bytes.Buffer
	watchStats(&buf, be, time.Millisecond, 5)
	out := buf.String()
	if strings.Contains(out, watchHeader) {
		t.Errorf("header should not print when the first sample fails:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("expected error report, got:\n%s", out)
	}
}

// scriptedCCBackend is scriptedBackend plus a scripted client-cache
// stats sequence, so the -ccache watch view is deterministic too.
type scriptedCCBackend struct {
	scriptedBackend
	cc      []ccache.Stats
	ccCalls int
}

func (b *scriptedCCBackend) CacheStats() ccache.Stats {
	i := b.ccCalls
	b.ccCalls++
	if i >= len(b.cc) {
		i = len(b.cc) - 1
	}
	return b.cc[i]
}

func TestWatchStatsCcacheColumn(t *testing.T) {
	be := &scriptedCCBackend{
		scriptedBackend: scriptedBackend{
			errAt:   -1,
			samples: []aria.Stats{{}, {Gets: 5, Keys: 5}, {Gets: 10, Keys: 10}},
		},
		cc: []ccache.Stats{
			{Armed: true, Hits: 0, Misses: 0},
			{Armed: true, Hits: 90, Misses: 10}, // window: 90/100 -> 90.0%
			{Armed: false, Hits: 90, Misses: 10},
		},
	}
	var buf bytes.Buffer
	watchStats(&buf, be, time.Millisecond, 2)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if lines[0] != watchHeaderCC {
		t.Errorf("header = %q, want %q", lines[0], watchHeaderCC)
	}
	if !strings.Contains(lines[0], "cc-hit%") {
		t.Errorf("header missing cc-hit%% column: %q", lines[0])
	}
	if !strings.Contains(lines[1], "90.0%") {
		t.Errorf("row 1 missing 90.0%% cc hit rate: %q", lines[1])
	}
	// The stream went down before the second sample: the cell must say
	// cold, never a stale percentage.
	if !strings.Contains(lines[2], "cold") {
		t.Errorf("row 2 should show cold cache: %q", lines[2])
	}
}

func TestCcCellWindowAndFallback(t *testing.T) {
	// Window delta dominates when traffic flowed.
	got := ccCell(ccache.Stats{Armed: true, Hits: 10, Misses: 10},
		ccache.Stats{Armed: true, Hits: 40, Misses: 20})
	if !strings.Contains(got, "75.0%") {
		t.Errorf("window cc cell = %q, want 75.0%%", got)
	}
	// No traffic between samples: fall back to the lifetime ratio.
	s := ccache.Stats{Armed: true, Hits: 30, Misses: 10}
	if got := ccCell(s, s); !strings.Contains(got, "75.0%") {
		t.Errorf("lifetime cc cell = %q, want 75.0%%", got)
	}
	if got := ccCell(ccache.Stats{}, ccache.Stats{Armed: false}); !strings.Contains(got, "cold") {
		t.Errorf("disarmed cc cell = %q, want cold", got)
	}
}

// TestWatchLineExtraInsertsBeforeHealth pins the cc column position:
// between gen and health, so the base columns (indices 0-9) keep their
// positions whether or not the cache is on.
func TestWatchLineExtraInsertsBeforeHealth(t *testing.T) {
	cur := aria.Stats{Keys: 3, ReplRole: "primary", ReplGeneration: 2}
	line := watchLineExtra(aria.Stats{}, cur, "    99.9%", time.Second, time.Second)
	fields := strings.Fields(line)
	if len(fields) < 12 {
		t.Fatalf("line has %d fields: %q", len(fields), line)
	}
	if fields[9] != "p2" || fields[10] != "99.9%" {
		t.Errorf("gen/cc fields = %q %q, want p2 99.9%% (line %q)", fields[9], fields[10], line)
	}
}
