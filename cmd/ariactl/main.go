// Command ariactl is an interactive shell over the aria API: open a
// store of any scheme (or connect to a running aria-server), issue
// put/get/del, inspect stats, and run the integrity audit — including
// after hand-corrupting untrusted memory with the attack commands, which
// demonstrates detection end to end.
//
// Usage:
//
//	ariactl [-scheme aria-h] [-keys 100000] [-epc 91]
//	ariactl -connect host:7970
//	ariactl -connect host:7970 -ccache
//	ariactl -connect host:7970 -watch [-interval 1s]
//
// -connect attaches to a live aria-server over the kvnet protocol
// instead of opening an in-process store; every command then operates on
// the remote store. -ccache additionally fronts the connection with the
// coherent client cache (package ccache): hot reads are served locally,
// kept fresh by the server's invalidation stream (the server must run
// with -inval-push). -watch skips the shell and streams a one-line
// operations view (op rates, cache hit ratio, paging, replication lag
// and generation, health — plus cc-hit% under -ccache) every -interval
// until interrupted — the terminal companion to the /metrics endpoint
// (see docs/OPERATIONS.md).
//
// Commands:
//
//	put <key> <value>     store a pair
//	get <key>             fetch a value
//	del <key>             delete a key
//	fill <n>              bulk-load n deterministic pairs
//	scan [start] [end]    ordered range scan (tree schemes)
//	stats                 operation/enclave counters
//	stats watch [sec]     live delta view, one line per second
//	checkpoint            sealed snapshot + WAL truncation (needs -data-dir / durable server)
//	verify                full offline integrity audit (local only)
//	help, quit
//
// -data-dir DIR opens the local store durable (sealed WAL + snapshots
// under DIR), recovering any committed state already there; checkpoint
// then works locally. Against -connect, checkpoint asks the server.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/ccache"
	"github.com/ariakv/aria/kvnet"
)

var schemes = map[string]aria.Scheme{
	"aria-h":      aria.AriaHash,
	"aria-bp":     aria.AriaBPTree,
	"aria-t":      aria.AriaTree,
	"nocache-h":   aria.NoCacheHash,
	"nocache-t":   aria.NoCacheTree,
	"shieldstore": aria.ShieldStoreScheme,
	"baseline-h":  aria.BaselineHash,
	"baseline-t":  aria.BaselineTree,
}

// backend abstracts over an in-process store and a kvnet connection so
// the shell commands work identically in both modes.
type backend interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Scan(start, end []byte, fn func(key, value []byte) bool) error
	Stats() (aria.Stats, error)
	Checkpoint() error
	Verify() error
}

// localBackend serves commands from an in-process store.
type localBackend struct{ st aria.Store }

func (b *localBackend) Put(k, v []byte) error        { return b.st.Put(k, v) }
func (b *localBackend) Get(k []byte) ([]byte, error) { return b.st.Get(k) }
func (b *localBackend) Delete(k []byte) error        { return b.st.Delete(k) }
func (b *localBackend) Stats() (aria.Stats, error)   { return b.st.Stats(), nil }
func (b *localBackend) Verify() error                { return b.st.VerifyIntegrity() }
func (b *localBackend) Checkpoint() error {
	d, ok := b.st.(aria.Durable)
	if !ok {
		return aria.ErrNotDurable
	}
	return d.Checkpoint()
}
func (b *localBackend) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	r, ok := b.st.(aria.Ranger)
	if !ok {
		return aria.ErrNoScan
	}
	return r.Scan(start, end, fn)
}

// remoteBackend serves commands from an aria-server over kvnet.
type remoteBackend struct{ cl *kvnet.Client }

func (b *remoteBackend) Put(k, v []byte) error        { return b.cl.Put(k, v) }
func (b *remoteBackend) Get(k []byte) ([]byte, error) { return b.cl.Get(k) }
func (b *remoteBackend) Delete(k []byte) error        { return b.cl.Delete(k) }
func (b *remoteBackend) Stats() (aria.Stats, error)   { return b.cl.Stats() }
func (b *remoteBackend) Checkpoint() error            { return b.cl.Checkpoint() }
func (b *remoteBackend) Verify() error {
	return fmt.Errorf("verify runs in-process only: the audit walks enclave memory (use the server's /healthz or aria_health metric)")
}
func (b *remoteBackend) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	return b.cl.Scan(start, end, 0, fn)
}

// ccacheBackend fronts a remote server with the coherent client cache
// (-ccache): reads of hot keys are served locally with zero network
// hops, kept fresh by the server's invalidation stream. Everything the
// cache does not mediate goes through the underlying client.
type ccacheBackend struct{ c *ccache.Cache }

func (b *ccacheBackend) Put(k, v []byte) error        { return b.c.Put(k, v) }
func (b *ccacheBackend) Get(k []byte) ([]byte, error) { return b.c.Get(k) }
func (b *ccacheBackend) Delete(k []byte) error        { return b.c.Delete(k) }
func (b *ccacheBackend) Stats() (aria.Stats, error)   { return b.c.Client().Stats() }
func (b *ccacheBackend) Checkpoint() error            { return b.c.Client().Checkpoint() }
func (b *ccacheBackend) Verify() error {
	return fmt.Errorf("verify runs in-process only: the audit walks enclave memory (use the server's /healthz or aria_health metric)")
}
func (b *ccacheBackend) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	return b.c.Client().Scan(start, end, 0, fn)
}
func (b *ccacheBackend) CacheStats() ccache.Stats { return b.c.Stats() }

// cacheStatser is implemented by backends that carry a client cache;
// the watch view adds the cc-hit% column when it is present.
type cacheStatser interface{ CacheStats() ccache.Stats }

func main() {
	var (
		schemeName = flag.String("scheme", "aria-h", "store scheme (aria-h, aria-t, nocache-h, nocache-t, shieldstore, baseline-h, baseline-t)")
		keys       = flag.Int("keys", 100000, "expected key count")
		epcMB      = flag.Int("epc", 91, "simulated EPC size in MB")
		connect    = flag.String("connect", "", "attach to a running aria-server at this address instead of opening a store")
		watch      = flag.Bool("watch", false, "stream the live stats view instead of the shell (Ctrl-C to stop)")
		interval   = flag.Duration("interval", time.Second, "refresh interval for -watch")
		dataDir    = flag.String("data-dir", "", "open the local store durable: sealed WAL + snapshots under this directory")
		useCcache  = flag.Bool("ccache", false, "front -connect with the coherent client cache (server needs -inval-push); adds the cc-hit% watch column")
	)
	flag.Parse()

	var be backend
	if *useCcache && *connect == "" {
		fmt.Fprintln(os.Stderr, "-ccache requires -connect: the cache fronts a remote server")
		os.Exit(2)
	}
	if *connect != "" && *useCcache {
		c, err := ccache.Open(*connect, ccache.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer c.Close()
		be = &ccacheBackend{c: c}
		fmt.Printf("connected to aria-server at %s (coherent client cache on). Type 'help'.\n", *connect)
	} else if *connect != "" {
		cl, err := kvnet.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cl.Close()
		be = &remoteBackend{cl: cl}
		fmt.Printf("connected to aria-server at %s. Type 'help'.\n", *connect)
	} else {
		scheme, ok := schemes[*schemeName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
			os.Exit(2)
		}
		st, err := aria.Open(aria.Options{
			Scheme:       scheme,
			EPCBytes:     *epcMB << 20,
			ExpectedKeys: *keys,
			DataDir:      *dataDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d, ok := st.(aria.Durable); ok {
			defer d.Close()
			if rec := st.Stats().RecoveredRecords; rec > 0 {
				fmt.Printf("recovered %d records from %s\n", rec, *dataDir)
			}
		}
		be = &localBackend{st: st}
		fmt.Printf("aria %s store ready (EPC %d MB, expecting %d keys). Type 'help'.\n",
			scheme, *epcMB, *keys)
	}

	if *watch {
		watchStats(os.Stdout, be, *interval, 0)
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			report(be.Put([]byte(fields[1]), []byte(fields[2])))
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, err := be.Get([]byte(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			report(be.Delete([]byte(fields[1])))
		case "fill":
			n := 10000
			if len(fields) > 1 {
				fmt.Sscanf(fields[1], "%d", &n)
			}
			for i := 0; i < n; i++ {
				if err := be.Put([]byte(fmt.Sprintf("fill-%08d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			fmt.Printf("loaded %d pairs\n", n)
		case "scan":
			var start, end []byte
			if len(fields) > 1 {
				start = []byte(fields[1])
			}
			if len(fields) > 2 {
				end = []byte(fields[2])
			}
			n := 0
			err := be.Scan(start, end, func(k, v []byte) bool {
				fmt.Printf("%s = %q\n", k, v)
				n++
				return n < 100
			})
			if err != nil {
				fmt.Println("error:", err)
			} else if n == 100 {
				fmt.Println("... (truncated at 100 pairs)")
			}
		case "stats":
			if len(fields) > 1 && fields[1] == "watch" {
				secs := 10
				if len(fields) > 2 {
					if n, err := strconv.Atoi(fields[2]); err == nil && n > 0 {
						secs = n
					}
				}
				watchStats(os.Stdout, be, time.Second, secs)
				continue
			}
			s, err := be.Stats()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("keys=%d gets=%d puts=%d dels=%d health=%s\n", s.Keys, s.Gets, s.Puts, s.Deletes, s.Health())
			fmt.Printf("sim-cycles=%d (%.3fs @3.6GHz) pageswaps=%d ocalls=%d macs=%d\n",
				s.SimCycles, s.SimSeconds, s.PageSwaps, s.Ocalls, s.MACs)
			fmt.Printf("cache: hits=%d misses=%d ratio=%.3f stopswap=%v pinned-levels=%d\n",
				s.CacheHits, s.CacheMisses, s.CacheHitRatio, s.StopSwap, s.PinnedLevels)
			if s.WALAppends > 0 || s.Checkpoints > 0 || s.RecoveredRecords > 0 {
				fmt.Printf("wal: appends=%d records=%d bytes=%d fsyncs=%d ckpts=%d recovered=%d\n",
					s.WALAppends, s.WALRecords, s.WALBytes, s.WALFsyncs, s.Checkpoints, s.RecoveredRecords)
			}
			if s.CompRawBytes > 0 || s.Segments > 0 || s.ColdKeys > 0 {
				ratio := 1.0
				if s.CompRawBytes > 0 {
					ratio = float64(s.CompBytes) / float64(s.CompRawBytes)
				}
				fmt.Printf("cold: keys=%d bytes=%d ratio=%.2f dict=%d hits=%d misses=%d segs=%d seg-bytes=%d compactions=%d\n",
					s.ColdKeys, s.ColdBytes, ratio, s.CompDictBytes, s.ColdHits, s.ColdMisses,
					s.Segments, s.SegmentBytes, s.Compactions)
			}
			if s.ReplRole != "" {
				fmt.Printf("repl: role=%s generation=%d lag=%d\n", s.ReplRole, s.ReplGeneration, s.ReplLag)
			}
			if cs, ok := be.(cacheStatser); ok {
				cc := cs.CacheStats()
				fmt.Printf("ccache: armed=%v hits=%d misses=%d bypass=%d ratio=%.3f entries=%d invals=%d cold-drops=%d\n",
					cc.Armed, cc.Hits, cc.Misses, cc.Bypass, cc.HitRatio(), cc.Entries, cc.Invalidations, cc.ColdDrops)
			}
		case "checkpoint":
			if err := be.Checkpoint(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("checkpoint written: sealed state (snapshot or segment set) on disk, obsolete WAL segments removed")
			}
		case "verify":
			if err := be.Verify(); err != nil {
				fmt.Println("AUDIT FAILED:", err)
			} else {
				fmt.Println("audit clean: confidentiality and integrity intact")
			}
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | scan [start] [end] | fill <n> | stats [watch [sec]] | checkpoint | verify | quit")
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}

// watchHeader is the column header of the live stats view. The first
// block mirrors the in-memory operations view; the wsync/s and ckpts
// columns surface the durability families (zero on non-durable stores);
// lag and gen surface the replication overlay (lag is a replica's apply
// gap in sequence numbers, gen the sealed generation prefixed with the
// role initial — p3, r3, f3 — or "-" when replication is inactive);
// coldkb/ratio/segs surface the compressed cold tier (resident
// compressed KiB, compressed/raw ratio, live segment count — all "-"
// until Options.ColdCompress produces state).
const watchHeader = "    gets/s    puts/s    dels/s    hit%   swaps/s   wsync/s  ckpts     keys     lag  gen  coldkb  ratio  segs   health"

// watchHeaderCC is the header when the backend fronts the server with
// the coherent client cache: cc-hit% (local cache hit ratio over the
// sample window; "cold" while the invalidation stream is down) slots
// in after gen.
const watchHeaderCC = "    gets/s    puts/s    dels/s    hit%   swaps/s   wsync/s  ckpts     keys     lag  gen  cc-hit%  coldkb  ratio  segs   health"

// watchStats prints one delta line per interval: operation rates since
// the previous sample, cache behaviour, paging, WAL fsync rate,
// checkpoints taken, and health. seconds 0 streams until the process is
// interrupted. A backend carrying a client cache gets the cc-hit%
// column as well.
func watchStats(w io.Writer, be backend, interval time.Duration, seconds int) {
	prev, err := be.Stats()
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	cs, hasCC := be.(cacheStatser)
	var prevCC ccache.Stats
	if hasCC {
		prevCC = cs.CacheStats()
		fmt.Fprintln(w, watchHeaderCC)
	} else {
		fmt.Fprintln(w, watchHeader)
	}
	t0 := time.Now()
	for i := 0; seconds == 0 || i < seconds; i++ {
		time.Sleep(interval)
		cur, err := be.Stats()
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			return
		}
		extra := ""
		if hasCC {
			curCC := cs.CacheStats()
			extra = ccCell(prevCC, curCC)
			prevCC = curCC
		}
		fmt.Fprint(w, watchLineExtra(prev, cur, extra, interval, time.Since(t0)))
		prev = cur
	}
}

// watchLine formats one delta row of the watch view from two samples.
func watchLine(prev, cur aria.Stats, interval, elapsed time.Duration) string {
	return watchLineExtra(prev, cur, "", interval, elapsed)
}

// watchLineExtra is watchLine with an optional pre-formatted column
// block inserted between gen and health (the cc-hit% cell).
func watchLineExtra(prev, cur aria.Stats, extra string, interval, elapsed time.Duration) string {
	dt := interval.Seconds()
	rate := func(now, before uint64) float64 { return float64(now-before) / dt }
	hit := cur.CacheHitRatio * 100
	if d := (cur.CacheHits + cur.CacheMisses) - (prev.CacheHits + prev.CacheMisses); d > 0 {
		hit = 100 * float64(cur.CacheHits-prev.CacheHits) / float64(d)
	}
	return fmt.Sprintf("%10.0f%10.0f%10.0f%8.1f%10.0f%10.0f%7d%9d%8d%5s%s%s   %s  [%s]\n",
		rate(cur.Gets, prev.Gets), rate(cur.Puts, prev.Puts), rate(cur.Deletes, prev.Deletes),
		hit, rate(cur.PageSwaps, prev.PageSwaps), rate(cur.WALFsyncs, prev.WALFsyncs),
		cur.Checkpoints, cur.Keys, cur.ReplLag, genCell(cur), extra, coldCells(cur),
		cur.Health(), elapsed.Truncate(time.Second))
}

// coldCells renders the cold-tier columns: resident compressed KiB,
// compressed/raw ratio over everything compressed so far, and the live
// segment count. All "-" until the cold tier has produced state, so a
// store running without Options.ColdCompress shows an inert block
// rather than misleading zeroes.
func coldCells(s aria.Stats) string {
	if s.CompRawBytes == 0 && s.Segments == 0 && s.ColdKeys == 0 {
		return fmt.Sprintf("%8s%7s%6s", "-", "-", "-")
	}
	ratio := "-"
	if s.CompRawBytes > 0 {
		ratio = fmt.Sprintf("%.2f", float64(s.CompBytes)/float64(s.CompRawBytes))
	}
	return fmt.Sprintf("%8d%7s%6d", s.ColdBytes>>10, ratio, s.Segments)
}

// ccCell renders the cc-hit% column: the client cache's hit ratio over
// the sample window ("cold" while the invalidation stream is down and
// every read bypasses the cache).
func ccCell(prev, cur ccache.Stats) string {
	if !cur.Armed {
		return fmt.Sprintf("%9s", "cold")
	}
	ratio := cur.HitRatio() * 100
	if d := (cur.Hits + cur.Misses) - (prev.Hits + prev.Misses); d > 0 {
		ratio = 100 * float64(cur.Hits-prev.Hits) / float64(d)
	}
	return fmt.Sprintf("%8.1f%%", ratio)
}

// genCell renders the replication generation column: the role initial
// plus the sealed generation (p3 = primary gen 3, r3 = replica, f3 =
// fenced), or "-" when the store is not replicated.
func genCell(s aria.Stats) string {
	if s.ReplRole == "" {
		return "-"
	}
	return fmt.Sprintf("%s%d", s.ReplRole[:1], s.ReplGeneration)
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}
