// Command ariactl is an interactive shell over the public aria API: open a
// store of any scheme, issue put/get/del, inspect stats, and run the
// integrity audit — including after hand-corrupting untrusted memory with
// the attack commands, which demonstrates detection end to end.
//
// Usage:
//
//	ariactl [-scheme aria-h] [-keys 100000] [-epc 91]
//
// Commands:
//
//	put <key> <value>     store a pair
//	get <key>             fetch a value
//	del <key>             delete a key
//	fill <n>              bulk-load n deterministic pairs
//	stats                 operation/enclave counters
//	verify                full offline integrity audit
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ariakv/aria"
)

var schemes = map[string]aria.Scheme{
	"aria-h":      aria.AriaHash,
	"aria-bp":     aria.AriaBPTree,
	"aria-t":      aria.AriaTree,
	"nocache-h":   aria.NoCacheHash,
	"nocache-t":   aria.NoCacheTree,
	"shieldstore": aria.ShieldStoreScheme,
	"baseline-h":  aria.BaselineHash,
	"baseline-t":  aria.BaselineTree,
}

func main() {
	var (
		schemeName = flag.String("scheme", "aria-h", "store scheme (aria-h, aria-t, nocache-h, nocache-t, shieldstore, baseline-h, baseline-t)")
		keys       = flag.Int("keys", 100000, "expected key count")
		epcMB      = flag.Int("epc", 91, "simulated EPC size in MB")
	)
	flag.Parse()

	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	st, err := aria.Open(aria.Options{
		Scheme:       scheme,
		EPCBytes:     *epcMB << 20,
		ExpectedKeys: *keys,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("aria %s store ready (EPC %d MB, expecting %d keys). Type 'help'.\n",
		scheme, *epcMB, *keys)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			report(st.Put([]byte(fields[1]), []byte(fields[2])))
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, err := st.Get([]byte(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			report(st.Delete([]byte(fields[1])))
		case "fill":
			n := 10000
			if len(fields) > 1 {
				fmt.Sscanf(fields[1], "%d", &n)
			}
			for i := 0; i < n; i++ {
				if err := st.Put([]byte(fmt.Sprintf("fill-%08d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			fmt.Printf("loaded %d pairs\n", n)
		case "scan":
			r, ok := st.(aria.Ranger)
			if !ok {
				fmt.Println("error: this scheme does not support scans (try -scheme aria-bp)")
				continue
			}
			var start, end []byte
			if len(fields) > 1 {
				start = []byte(fields[1])
			}
			if len(fields) > 2 {
				end = []byte(fields[2])
			}
			n := 0
			err := r.Scan(start, end, func(k, v []byte) bool {
				fmt.Printf("%s = %q\n", k, v)
				n++
				return n < 100
			})
			if err != nil {
				fmt.Println("error:", err)
			} else if n == 100 {
				fmt.Println("... (truncated at 100 pairs)")
			}
		case "stats":
			s := st.Stats()
			fmt.Printf("keys=%d gets=%d puts=%d dels=%d\n", s.Keys, s.Gets, s.Puts, s.Deletes)
			fmt.Printf("sim-cycles=%d (%.3fs @3.6GHz) pageswaps=%d ocalls=%d macs=%d\n",
				s.SimCycles, s.SimSeconds, s.PageSwaps, s.Ocalls, s.MACs)
			fmt.Printf("cache: hits=%d misses=%d ratio=%.3f stopswap=%v pinned-levels=%d\n",
				s.CacheHits, s.CacheMisses, s.CacheHitRatio, s.StopSwap, s.PinnedLevels)
		case "verify":
			if err := st.VerifyIntegrity(); err != nil {
				fmt.Println("AUDIT FAILED:", err)
			} else {
				fmt.Println("audit clean: confidentiality and integrity intact")
			}
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | scan [start] [end] | fill <n> | stats | verify | quit")
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}
