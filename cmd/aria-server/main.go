// Command aria-server runs an aria store behind a TCP endpoint using the
// kvnet protocol — the paper's deployment model of an enclave-hosted KV
// store on an untrusted machine (transport protection via remote
// attestation is assumed established, §II-B).
//
// Usage:
//
//	aria-server [-addr :7970] [-scheme aria-h] [-keys 1000000] [-epc 91]
//	            [-shards 1] [-policy failstop|quarantine] [-max-conns 1024]
//	            [-idle-timeout 2m] [-write-timeout 30s] [-drain-timeout 5s]
//	            [-data-dir DIR] [-fsync batch|always|never] [-checkpoint-every N]
//	            [-cold-compress] [-compact-every N]
//	            [-primary] [-replica-of HOST:PORT] [-promote] [-sync-replicas N]
//
// -shards N hash-partitions the keyspace across N independent enclave
// instances, each with a 1/N slice of the EPC budget; the server then
// handles requests to different shards concurrently instead of behind one
// global lock.
//
// -data-dir DIR makes the store durable: every write is sealed
// (encrypted + MAC-chained) into a write-ahead log under DIR, and on
// restart the committed state is recovered from the newest snapshot
// plus WAL replay. -fsync picks the flush policy (batch group-commits
// one fsync per request; always syncs every record; never leaves
// flushing to the OS) and -checkpoint-every N takes an automatic
// sealed snapshot every N logged records (0 disables). On graceful
// shutdown the server checkpoints and closes the log, so the next
// start recovers from the snapshot instead of replaying the full WAL.
// With -shards each shard keeps its own WAL+snapshot lineage in
// DIR/shard-<i> and recovery runs in parallel across shards.
//
// -cold-compress (requires -data-dir) turns on the compressed cold
// tier: checkpoints write sorted, dictionary-compressed, sealed
// segments instead of whole-keyspace snapshots, and keys untouched
// between checkpoints are demoted out of the enclave index into
// compressed records (promoted back transparently on access). Segments
// accumulate incrementally and are rewritten into one per shard every
// -compact-every segments (default 8). See docs/OPERATIONS.md §2 for
// the aria_comp_*/aria_seg_* metric families and DESIGN.md §15 for the
// format.
//
// Replication (requires -data-dir): -primary publishes the sealed WAL
// to subscribing replicas; -replica-of HOST:PORT runs this store as a
// read replica of that primary, bootstrapping from its newest sealed
// snapshot and replaying the stream through the durable apply path.
// -sync-replicas N makes the primary acknowledge a write only after N
// replicas applied it. -promote opens an ex-replica's data directory as
// the new primary, bumping the sealed generation so the fenced
// ex-primary's late writes are rejected (see docs/OPERATIONS.md §9).
//
// Talk to it with the kvnet client package, e.g.:
//
//	cl, _ := kvnet.Dial("localhost:7970")
//	cl.Put([]byte("k"), []byte("v"))
//
// -metrics-addr :9100 additionally serves an observability endpoint on
// the given address (off by default): /metrics in Prometheus text
// format, /debug/vars as expvar JSON, and /healthz reporting the store's
// integrity condition. See docs/OPERATIONS.md for the metric catalogue.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/obs"
	"github.com/ariakv/aria/repl"
	"github.com/ariakv/aria/wal"
)

var schemes = map[string]aria.Scheme{
	"aria-h":      aria.AriaHash,
	"aria-t":      aria.AriaTree,
	"aria-bp":     aria.AriaBPTree,
	"nocache-h":   aria.NoCacheHash,
	"nocache-t":   aria.NoCacheTree,
	"shieldstore": aria.ShieldStoreScheme,
	"baseline-h":  aria.BaselineHash,
	"baseline-t":  aria.BaselineTree,
}

var policies = map[string]aria.IntegrityPolicy{
	"failstop":   aria.FailStop,
	"quarantine": aria.Quarantine,
}

func main() {
	var (
		addr         = flag.String("addr", ":7970", "listen address")
		schemeName   = flag.String("scheme", "aria-h", "store scheme")
		keys         = flag.Int("keys", 1_000_000, "expected key count")
		epcMB        = flag.Int("epc", 91, "simulated EPC size in MB (total, split across shards)")
		shards       = flag.Int("shards", 1, "hash-partition across this many independent enclaves")
		policyName   = flag.String("policy", "failstop", "integrity-failure policy: failstop or quarantine")
		maxConns     = flag.Int("max-conns", 1024, "simultaneous connection limit (excess is shed)")
		connWorkers  = flag.Int("conn-workers", 0, "pipelined requests served concurrently per connection (0: default 8)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "per-connection idle/read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write timeout")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "shutdown drain bound for in-flight requests")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /healthz on this address (empty: disabled)")
		dataDir      = flag.String("data-dir", "", "persist writes to a sealed WAL under this directory (empty: in-memory only)")
		fsyncName    = flag.String("fsync", "batch", "WAL flush policy: batch (one fsync per request), always, or never")
		ckptEvery    = flag.Int("checkpoint-every", 0, "automatic sealed snapshot every N logged records (0: only on shutdown)")
		coldComp     = flag.Bool("cold-compress", false, "compressed cold tier: checkpoint into sorted sealed segments and demote untouched keys (requires -data-dir)")
		compactEvery = flag.Int("compact-every", 0, "major-compact once the segment set reaches N segments (0: default 8; needs -cold-compress)")
		primary      = flag.Bool("primary", false, "publish the sealed WAL to subscribing replicas (requires -data-dir)")
		replicaOf    = flag.String("replica-of", "", "run as a read replica of the primary at this address (requires -data-dir)")
		promote      = flag.Bool("promote", false, "promote this data directory's replica lineage to primary (implies -primary)")
		syncReplicas = flag.Int("sync-replicas", 0, "acknowledge writes only after this many replicas applied them (implies -primary)")
		invalPush    = flag.Bool("inval-push", false, "push cache invalidations to subscribed ccache clients (primaries and standalone servers only)")
	)
	flag.Parse()

	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	policy, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown integrity policy %q (want failstop or quarantine)\n", *policyName)
		os.Exit(2)
	}
	fsync, err := wal.ParseFsyncPolicy(*fsyncName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	opts := aria.Options{
		Scheme:          scheme,
		EPCBytes:        *epcMB << 20,
		ExpectedKeys:    *keys,
		IntegrityPolicy: policy,
		Shards:          *shards,
		Metrics:         reg,
		DataDir:         *dataDir,
		Fsync:           fsync,
		CheckpointEvery: *ckptEvery,
		ColdCompress:    *coldComp,
		CompactEvery:    *compactEvery,
	}
	if *coldComp && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "the cold tier lives in checkpoint segments: pass -data-dir with -cold-compress")
		os.Exit(2)
	}

	replicated := *primary || *promote || *syncReplicas > 0 || *replicaOf != ""
	var (
		st   aria.Store
		node *repl.Node
	)
	switch {
	case replicated && *dataDir == "":
		fmt.Fprintln(os.Stderr, "replication needs a WAL to ship: pass -data-dir")
		os.Exit(2)
	case *replicaOf != "" && (*primary || *promote || *syncReplicas > 0):
		fmt.Fprintln(os.Stderr, "-replica-of conflicts with -primary/-promote/-sync-replicas")
		os.Exit(2)
	case replicated:
		rcfg := repl.Config{
			SyncReplicas: *syncReplicas,
			Promote:      *promote,
			Metrics:      reg,
			Logf:         log.Printf,
		}
		if *replicaOf != "" {
			node, err = repl.OpenReplica(opts, *replicaOf, rcfg)
		} else {
			node, err = repl.OpenPrimary(opts, rcfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		st = node.Store()
		log.Printf("aria-server: replication role %s, generation %d", node.Role(), node.Generation())
	default:
		st, err = aria.Open(opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *dataDir != "" {
		if rec := st.Stats().RecoveredRecords; rec > 0 {
			log.Printf("aria-server: recovered %d records from %s", rec, *dataDir)
		}
	}
	scfg := kvnet.ServerConfig{
		MaxConns:     *maxConns,
		ConnWorkers:  *connWorkers,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
		InvalPush:    *invalPush,
		Metrics:      reg,
	}
	if node != nil {
		scfg.Repl = node
	}
	srv := kvnet.NewServerConfig(st, scfg)

	if reg != nil {
		go serveMetrics(*metricsAddr, reg, st)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("aria-server: %v received, draining (up to %v)", sig, *drainTimeout)
		srv.Close()
	}()

	log.Printf("aria-server: %s store, EPC %d MB, %d shard(s), policy %s, listening on %s",
		scheme, *epcMB, *shards, policy, *addr)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, kvnet.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain complete: checkpoint so the next start recovers from the
	// snapshot instead of replaying the whole WAL, then close the log.
	// A replication node is closed as a whole — its appliers or
	// publishers first, then the durable store underneath.
	if *dataDir != "" {
		d, ok := st.(aria.Durable)
		if !ok {
			log.Printf("aria-server: store is unexpectedly not durable; skipping final checkpoint")
		} else {
			if err := d.Checkpoint(); err != nil {
				log.Printf("aria-server: final checkpoint failed: %v (WAL still holds every record)", err)
			}
			cerr := error(nil)
			if node != nil {
				cerr = node.Close()
			} else {
				cerr = d.Close()
			}
			if cerr != nil {
				log.Printf("aria-server: close store: %v", cerr)
			}
		}
	}
	log.Printf("aria-server: shut down cleanly (health: %s)", st.Stats().Health())
}

// serveMetrics exposes the observability endpoint: Prometheus text on
// /metrics, the full registry snapshot as expvar JSON on /debug/vars,
// and a liveness/integrity probe on /healthz (HTTP 200 while the store
// is healthy or degraded, 503 once it has fail-stopped).
func serveMetrics(addr string, reg *obs.Registry, st aria.Store) {
	expvar.Publish("aria", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := st.Stats().Health()
		w.Header().Set("Content-Type", "application/json")
		if h == aria.HealthFailed {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"health": string(h)})
	})
	log.Printf("aria-server: metrics on http://%s/metrics", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("aria-server: metrics endpoint failed: %v", err)
	}
}
