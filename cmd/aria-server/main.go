// Command aria-server runs an aria store behind a TCP endpoint using the
// kvnet protocol — the paper's deployment model of an enclave-hosted KV
// store on an untrusted machine (transport protection via remote
// attestation is assumed established, §II-B).
//
// Usage:
//
//	aria-server [-addr :7970] [-scheme aria-h] [-keys 1000000] [-epc 91]
//
// Talk to it with the kvnet client package, e.g.:
//
//	cl, _ := kvnet.Dial("localhost:7970")
//	cl.Put([]byte("k"), []byte("v"))
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
)

var schemes = map[string]aria.Scheme{
	"aria-h":      aria.AriaHash,
	"aria-t":      aria.AriaTree,
	"aria-bp":     aria.AriaBPTree,
	"nocache-h":   aria.NoCacheHash,
	"nocache-t":   aria.NoCacheTree,
	"shieldstore": aria.ShieldStoreScheme,
	"baseline-h":  aria.BaselineHash,
	"baseline-t":  aria.BaselineTree,
}

func main() {
	var (
		addr       = flag.String("addr", ":7970", "listen address")
		schemeName = flag.String("scheme", "aria-h", "store scheme")
		keys       = flag.Int("keys", 1_000_000, "expected key count")
		epcMB      = flag.Int("epc", 91, "simulated EPC size in MB")
	)
	flag.Parse()

	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	st, err := aria.Open(aria.Options{
		Scheme:       scheme,
		EPCBytes:     *epcMB << 20,
		ExpectedKeys: *keys,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := kvnet.NewServer(st)
	log.Printf("aria-server: %s store, EPC %d MB, listening on %s", scheme, *epcMB, *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
