// Command aria-server runs an aria store behind a TCP endpoint using the
// kvnet protocol — the paper's deployment model of an enclave-hosted KV
// store on an untrusted machine (transport protection via remote
// attestation is assumed established, §II-B).
//
// Usage:
//
//	aria-server [-addr :7970] [-scheme aria-h] [-keys 1000000] [-epc 91]
//	            [-shards 1] [-policy failstop|quarantine] [-max-conns 1024]
//	            [-idle-timeout 2m] [-write-timeout 30s] [-drain-timeout 5s]
//
// -shards N hash-partitions the keyspace across N independent enclave
// instances, each with a 1/N slice of the EPC budget; the server then
// handles requests to different shards concurrently instead of behind one
// global lock.
//
// Talk to it with the kvnet client package, e.g.:
//
//	cl, _ := kvnet.Dial("localhost:7970")
//	cl.Put([]byte("k"), []byte("v"))
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
)

var schemes = map[string]aria.Scheme{
	"aria-h":      aria.AriaHash,
	"aria-t":      aria.AriaTree,
	"aria-bp":     aria.AriaBPTree,
	"nocache-h":   aria.NoCacheHash,
	"nocache-t":   aria.NoCacheTree,
	"shieldstore": aria.ShieldStoreScheme,
	"baseline-h":  aria.BaselineHash,
	"baseline-t":  aria.BaselineTree,
}

var policies = map[string]aria.IntegrityPolicy{
	"failstop":   aria.FailStop,
	"quarantine": aria.Quarantine,
}

func main() {
	var (
		addr         = flag.String("addr", ":7970", "listen address")
		schemeName   = flag.String("scheme", "aria-h", "store scheme")
		keys         = flag.Int("keys", 1_000_000, "expected key count")
		epcMB        = flag.Int("epc", 91, "simulated EPC size in MB (total, split across shards)")
		shards       = flag.Int("shards", 1, "hash-partition across this many independent enclaves")
		policyName   = flag.String("policy", "failstop", "integrity-failure policy: failstop or quarantine")
		maxConns     = flag.Int("max-conns", 1024, "simultaneous connection limit (excess is shed)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "per-connection idle/read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write timeout")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "shutdown drain bound for in-flight requests")
	)
	flag.Parse()

	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	policy, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown integrity policy %q (want failstop or quarantine)\n", *policyName)
		os.Exit(2)
	}
	st, err := aria.Open(aria.Options{
		Scheme:          scheme,
		EPCBytes:        *epcMB << 20,
		ExpectedKeys:    *keys,
		IntegrityPolicy: policy,
		Shards:          *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := kvnet.NewServerConfig(st, kvnet.ServerConfig{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
	})

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("aria-server: %v received, draining (up to %v)", sig, *drainTimeout)
		srv.Close()
	}()

	log.Printf("aria-server: %s store, EPC %d MB, %d shard(s), policy %s, listening on %s",
		scheme, *epcMB, *shards, policy, *addr)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, kvnet.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("aria-server: shut down cleanly (health: %s)", st.Stats().Health())
}
