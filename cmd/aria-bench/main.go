// Command aria-bench regenerates the tables and figures of the Aria paper's
// evaluation (§VI) on the simulated-SGX substrate.
//
// Usage:
//
//	aria-bench -list
//	aria-bench -exp fig9 [-scale 16] [-ops 100000] [-seed 42]
//	aria-bench -exp all
//	aria-bench -exp xshard -json .
//
// Scale divides every keyspace and EPC budget by the same factor, which
// preserves the ratios that drive the results (see DESIGN.md §1). Scale 1
// reproduces the paper's absolute sizes and needs ~32 GB of RAM for the
// largest points; the default (16) fits comfortably on a laptop.
//
// -json DIR additionally writes each experiment's rows as structured data
// to DIR/BENCH_<exp>.json (numeric cells parsed — throughputs in ops/s),
// so results can be committed and diffed across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ariakv/aria/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig2, table1, fig9..fig16b, memtab, x*) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Int("scale", 16, "divide keyspaces and EPC budgets by this factor (1 = paper size)")
		ops     = flag.Int("ops", 100000, "measured operations per data point")
		seed    = flag.Int64("seed", 42, "workload seed")
		batch   = flag.Int("batch", 0, "batch experiment: measure only sizes {1, N} instead of the full sweep")
		jsonDir = flag.String("json", "", "also write BENCH_<exp>.json into this directory")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun one with: aria-bench -exp <id>   (or -exp all)")
		}
		return
	}

	p := bench.Params{Scale: *scale, Ops: *ops, Seed: *seed, Batch: *batch}
	run := func(e bench.Experiment) {
		start := time.Now()
		if *jsonDir == "" {
			if err := e.Run(p, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
		} else {
			rep, err := bench.RunCollect(e, p, os.Stdout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: encode report: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: write report: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("   [wrote %s]\n", path)
		}
		fmt.Printf("   [%s done in %.1fs wall]\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
