package aria

// Batched operations. A batch enters the enclave once: the marshalled
// request is copied across the boundary in one shot, every key is served
// inside, and the marshalled response is copied back out. The per-key cost
// therefore approaches the pure in-enclave work as the batch grows, which
// is exactly the amortization the paper's cost model rewards — edge
// crossings and boundary copies dominate small-operation workloads
// (DESIGN.md §8 works through the accounting per scheme).
//
// Every scheme implements the batch natively via its own guarded single-op
// path, so integrity policies (FailStop/Quarantine) apply per key inside a
// batch exactly as they do outside one.

import "github.com/ariakv/aria/internal/sgx"

// KV is one key/value pair of a batched MPut.
type KV struct {
	Key   []byte // key bytes; same limits as Put
	Value []byte // value bytes; same limits as Put
}

// Marshalled record sizes for batch edge accounting. They mirror the kvnet
// wire layout (kvnet/protocol.go) so a store embedded in a server charges
// the same boundary bytes the network path actually moves: a 5-byte batch
// header (op + count), 2-byte key length + key per request record, 4-byte
// value length + value where a value travels, and a status byte per
// response record.
const (
	batchHdrBytes     = 5
	batchKeyHdrBytes  = 2
	batchValHdrBytes  = 4
	batchStatusBytes  = 1
	batchRespPerValue = batchStatusBytes + batchValHdrBytes
)

// batchErr materializes the positional error slice on first failure, so a
// fully successful batch returns a nil slice without allocating.
func batchErr(errs []error, n, i int, err error) []error {
	if errs == nil {
		errs = make([]error, n)
	}
	errs[i] = err
	return errs
}

// mgetNative runs a batched read against one enclave-backed store: one
// BatchEnter/BatchExit bracket around per-key guarded Gets.
func mgetNative(enc *sgx.Enclave, get func([]byte) ([]byte, error), keys [][]byte) ([][]byte, []error) {
	req := batchHdrBytes
	for _, k := range keys {
		req += batchKeyHdrBytes + len(k)
	}
	enc.BatchEnter(len(keys), req)
	vals := make([][]byte, len(keys))
	var errs []error
	resp := batchHdrBytes
	for i, k := range keys {
		v, err := get(k)
		resp += batchRespPerValue + len(v)
		if err != nil {
			errs = batchErr(errs, len(keys), i, err)
			continue
		}
		vals[i] = v
	}
	enc.BatchExit(resp)
	return vals, errs
}

// mputNative runs a batched write: one edge bracket around per-pair guarded
// Puts.
func mputNative(enc *sgx.Enclave, put func(key, value []byte) error, pairs []KV) []error {
	req := batchHdrBytes
	for _, p := range pairs {
		req += batchKeyHdrBytes + len(p.Key) + batchValHdrBytes + len(p.Value)
	}
	enc.BatchEnter(len(pairs), req)
	var errs []error
	for i, p := range pairs {
		if err := put(p.Key, p.Value); err != nil {
			errs = batchErr(errs, len(pairs), i, err)
		}
	}
	enc.BatchExit(batchHdrBytes + len(pairs)*batchStatusBytes)
	return errs
}

// mdeleteNative runs a batched delete: one edge bracket around per-key
// guarded Deletes.
func mdeleteNative(enc *sgx.Enclave, del func([]byte) error, keys [][]byte) []error {
	req := batchHdrBytes
	for _, k := range keys {
		req += batchKeyHdrBytes + len(k)
	}
	enc.BatchEnter(len(keys), req)
	var errs []error
	for i, k := range keys {
		if err := del(k); err != nil {
			errs = batchErr(errs, len(keys), i, err)
		}
	}
	enc.BatchExit(batchHdrBytes + len(keys)*batchStatusBytes)
	return errs
}

// ---- Aria / Aria w/o Cache ----------------------------------------------------

// MGet implements the batched read for Aria schemes: one simulated enclave
// entry for the whole batch, per-key integrity enforcement inside.
func (c *coreStore) MGet(keys [][]byte) ([][]byte, []error) {
	return mgetNative(c.enc, c.Get, keys)
}

// MPut implements the batched write for Aria schemes.
func (c *coreStore) MPut(pairs []KV) []error {
	return mputNative(c.enc, c.Put, pairs)
}

// MDelete implements the batched delete for Aria schemes.
func (c *coreStore) MDelete(keys [][]byte) []error {
	return mdeleteNative(c.enc, c.Delete, keys)
}

// ---- ShieldStore ---------------------------------------------------------------

// MGet implements the batched read for ShieldStore.
func (s *shieldStore) MGet(keys [][]byte) ([][]byte, []error) {
	return mgetNative(s.enc, s.Get, keys)
}

// MPut implements the batched write for ShieldStore.
func (s *shieldStore) MPut(pairs []KV) []error {
	return mputNative(s.enc, s.Put, pairs)
}

// MDelete implements the batched delete for ShieldStore.
func (s *shieldStore) MDelete(keys [][]byte) []error {
	return mdeleteNative(s.enc, s.Delete, keys)
}

// ---- Baseline -------------------------------------------------------------------

// MGet implements the batched read for baseline schemes.
func (b *baseStore) MGet(keys [][]byte) ([][]byte, []error) {
	return mgetNative(b.enc, b.Get, keys)
}

// MPut implements the batched write for baseline schemes.
func (b *baseStore) MPut(pairs []KV) []error {
	return mputNative(b.enc, b.Put, pairs)
}

// MDelete implements the batched delete for baseline schemes.
func (b *baseStore) MDelete(keys [][]byte) []error {
	return mdeleteNative(b.enc, b.Delete, keys)
}
