GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz docs-check metrics-guard check bench-json clean

# Parameters for the committed BENCH_*.json snapshots: big enough caches
# that shard scaling isn't quantization-bound, small enough to run in
# seconds.
BENCH_SCALE ?= 128
BENCH_OPS ?= 20000

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos and resilience suites must stay clean under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Explore the wire-format decoders beyond the seeded corpus.
fuzz:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodePair -fuzztime=$(FUZZTIME) ./kvnet

# Every exported identifier in the public API surface must carry godoc.
docs-check:
	$(GO) run ./internal/docslint . kvnet obs

# Prove the disabled-metrics path costs <2% vs the raw store on the
# fig9-style microbench (skipped unless METRICS_GUARD=1).
metrics-guard:
	METRICS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard -v .

# Regenerate the committed machine-readable benchmark snapshots.
bench-json:
	$(GO) run ./cmd/aria-bench -exp xshard -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp fig9 -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .

check: build vet docs-check test race

clean:
	$(GO) clean ./...
