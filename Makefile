GO ?= go
FUZZTIME ?= 10s

# Pinned analysis tool versions so CI runs are reproducible.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

# Version-suffixed tool binaries, so CI can cache them keyed on the
# pinned versions and a version bump naturally misses the cache.
TOOLDIR ?= $(CURDIR)/.tools
STATICCHECK_BIN := $(TOOLDIR)/staticcheck-$(STATICCHECK_VERSION)
GOVULNCHECK_BIN := $(TOOLDIR)/govulncheck-$(GOVULNCHECK_VERSION)

# Iterations for the chaos suites; the nightly workflow raises this.
CHAOS_COUNT ?= 1

# Total statement coverage must not fall below this floor (see cover).
COVER_BASELINE ?= 78.0

.PHONY: all build test race vet fuzz fuzz-smoke docs-check metrics-guard \
	lint lint-tools cover bench-smoke bench-smoke-demo check bench-json \
	bench-wire chaos-repl chaos-ccache clean

# Parameters for the committed BENCH_*.json snapshots: big enough caches
# that shard scaling isn't quantization-bound, small enough to run in
# seconds.
BENCH_SCALE ?= 128
BENCH_OPS ?= 20000

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos and resilience suites must stay clean under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Explore the wire-format and WAL-record decoders beyond the seeded corpus.
fuzz:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodePair -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodeBatchRequest -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzParseBatchRecord -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodeInvalEntries -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzSplitTag -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzParseHello -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodeTxnRequest -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzWALRecord -fuzztime=$(FUZZTIME) ./wal
	$(GO) test -fuzz=FuzzDictDecompress -fuzztime=$(FUZZTIME) ./internal/compress
	$(GO) test -fuzz=FuzzSegmentRecover -fuzztime=$(FUZZTIME) ./internal/segment

# CI's PR-path fuzzing pass: every fuzzer above, briefly. The seeded
# corpora under testdata/ run on every plain `go test` regardless; the
# long exploratory runs live in the nightly workflow (FUZZTIME=5m).
FUZZSMOKETIME ?= 10s
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=$(FUZZSMOKETIME)

# Every exported identifier in the public API surface must carry godoc.
docs-check:
	$(GO) run ./internal/docslint . kvnet obs wal repl ccache

# Replication chaos suite under the race detector: kill-primary failover
# with zero acknowledged-write loss, partition staleness bounds, link
# flap convergence, and graceful drain/redial (see repl/repl_test.go).
chaos-repl:
	$(GO) test -race -count=$(CHAOS_COUNT) -v -run \
		'TestFailoverZeroAckedWriteLoss|TestStalenessBoundAcrossPartition|TestLinkFlapConvergence|TestGracefulDrainRedial' \
		./repl

# Client-cache chaos suite under the race detector: partition/flap/
# blackhole cycles with zero stale reads past an acked invalidation,
# cold drop on redial, and the typed drain goodbye (see ccache).
chaos-ccache:
	$(GO) test -race -count=$(CHAOS_COUNT) -v -run \
		'TestChaosCcacheZeroStaleReads|TestCacheColdOnRedial|TestCacheDrainTyped' \
		./ccache

# Prove the disabled-metrics path costs <2% vs the raw store on the
# fig9-style microbench (skipped unless METRICS_GUARD=1).
metrics-guard:
	METRICS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard -v .

# Static analysis, pinned. Run on a machine with module-proxy access; the
# tools are installed into TOOLDIR under version-suffixed names (never
# added to go.mod), so repeated runs — and CI restores keyed on the
# versions — skip the build entirely.
lint-tools: $(STATICCHECK_BIN) $(GOVULNCHECK_BIN)

$(STATICCHECK_BIN):
	mkdir -p $(TOOLDIR)
	GOBIN=$(TOOLDIR) $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	mv $(TOOLDIR)/staticcheck $(STATICCHECK_BIN)

$(GOVULNCHECK_BIN):
	mkdir -p $(TOOLDIR)
	GOBIN=$(TOOLDIR) $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	mv $(TOOLDIR)/govulncheck $(GOVULNCHECK_BIN)

lint: lint-tools
	$(STATICCHECK_BIN) ./...
	$(GOVULNCHECK_BIN) ./...

# Coverage gate: total statement coverage must stay at or above
# COVER_BASELINE. Writes cover.html for the CI artifact.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t=$$total -v b=$(COVER_BASELINE) 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline"; exit 1; }

# Deterministic bench-regression smoke: re-run the committed BENCH_*.json
# snapshots in-process and fail on >5% drift in any table value.
bench-smoke:
	BENCH_GUARD=1 $(GO) test -count=1 -run 'TestBenchRegressionGuard|TestBatchAmortizationFloor|TestCcacheSpeedupFloor|TestWireSpeedupFloor|TestYCSBSkewFloor|TestCcoldCrossoverFloor|TestColdSnapshotSizeGuard' -v ./internal/bench

# Prove the smoke guard has teeth: pricing enclave memory 6% higher must
# push the committed tables out of tolerance.
bench-smoke-demo:
	! BENCH_GUARD=1 ARIA_COST_PERTURB=1.06 $(GO) test -count=1 -run TestBenchRegressionGuard ./internal/bench

# Regenerate the committed machine-readable benchmark snapshots.
bench-json:
	$(GO) run ./cmd/aria-bench -exp xshard -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp fig9 -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp batch -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp persist -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp repl -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp ccache -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp ycsb -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(GO) run ./cmd/aria-bench -exp ccold -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .
	$(MAKE) bench-wire

# Regenerate the wire-pipelining snapshot on its own. Wall-clock, not
# simulated: BENCH_wire.json is pinned by the TestWireSpeedupFloor ratio
# floor, not by the 5% drift guard.
bench-wire:
	$(GO) run ./cmd/aria-bench -exp wire -scale $(BENCH_SCALE) -ops $(BENCH_OPS) -json .

check: build vet docs-check test race

clean:
	$(GO) clean ./...
