GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos and resilience suites must stay clean under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Explore the wire-format decoders beyond the seeded corpus.
fuzz:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./kvnet
	$(GO) test -fuzz=FuzzDecodePair -fuzztime=$(FUZZTIME) ./kvnet

check: build vet test race

clean:
	$(GO) clean ./...
