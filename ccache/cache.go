package ccache

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/obs"
)

// Config tunes a Cache. Zero values select the defaults.
type Config struct {
	// Client configures the underlying kvnet data client Open dials.
	Client kvnet.ClientConfig
	// MaxEntries bounds cached entries (default 65536).
	MaxEntries int
	// MaxBytes bounds the cached payload footprint (default 64 MiB;
	// negative = unbounded).
	MaxBytes int64
	// Shards is the LRU lock-shard count, rounded up to a power of two
	// (default 256). More shards narrow the fill-guard blast radius: an
	// invalidation only kills in-flight fills on its own shard.
	Shards int
	// HeartbeatTimeout is how long the invalidation stream may stay
	// silent before the cache presumes it dead and drops cold (default
	// 3s; the server heartbeats every ServerConfig.InvalHeartbeat).
	HeartbeatTimeout time.Duration
	// RedialBackoff is the initial pause before re-dialing a lost
	// stream; it doubles per failure up to 2s (default 50ms).
	RedialBackoff time.Duration
	// Metrics, when non-nil, instruments the cache into the given
	// registry (ccache_* families; see docs/OPERATIONS.md).
	Metrics *obs.Registry
	// Logf, when non-nil, receives stream lifecycle notices.
	Logf func(format string, args ...any)
}

// maxRedialBackoff caps the stream redial backoff.
const maxRedialBackoff = 2 * time.Second

func (c *Config) fillDefaults() {
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.RedialBackoff == 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts reads served locally with zero network hops.
	Hits uint64
	// Misses counts armed reads that fetched from the server.
	Misses uint64
	// Bypass counts reads passed through while cold.
	Bypass uint64
	// Invalidations counts stream entries applied.
	Invalidations uint64
	// FillRaces counts fills discarded by the generation guard.
	FillRaces uint64
	// ColdDrops counts drops to cold (stream loss, drain, redial).
	ColdDrops uint64
	// Redials counts invalidation streams established.
	Redials uint64
	// Drains counts streams ended by the server's typed drain goodbye.
	Drains uint64
	// Entries and Bytes describe the current footprint.
	Entries int
	// Bytes is the approximate cached payload footprint.
	Bytes int64
	// Armed reports whether hits are currently being served.
	Armed bool
}

// HitRatio returns hits over armed reads (0 when none happened).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache fronts a kvnet client with a coherent local LRU. All methods
// are safe for concurrent use. See the package comment for the
// coherence contract.
type Cache struct {
	addr string
	cl   *kvnet.Client
	cfg  Config
	lru  *LRU
	met  *metrics

	armed atomic.Bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	bypass    atomic.Uint64
	invals    atomic.Uint64
	fillRaces atomic.Uint64
	coldDrops atomic.Uint64
	redials   atomic.Uint64
	drains    atomic.Uint64

	// marks tracks the highest write watermark this client produced (or
	// adopted via UseWatermark) per WAL shard; misses read with them so
	// a lagging replica answers ErrLagging instead of stale data.
	marksMu sync.Mutex
	marks   map[uint32]uint64

	// seqSeen tracks the highest invalidation seq applied per WAL
	// shard — the "version floor" below which no cached value survives.
	seqMu   sync.Mutex
	seqSeen map[uint32]uint64

	hookMu  sync.Mutex
	onInval func(kvnet.InvalEntry) // test hook; called per applied entry

	subMu sync.Mutex
	sub   *kvnet.InvalSub // live stream, closed by Close to unblock Next

	closeC    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Open dials addr for data and for the invalidation stream, returning
// a cache that starts cold and arms itself once the stream delivers
// its hello frame. Against a server without InvalPush (or a replica)
// the cache never arms and every read passes through — correct, just
// not accelerated.
func Open(addr string, cfg Config) (*Cache, error) {
	cfg.fillDefaults()
	cl, err := kvnet.DialConfig(addr, cfg.Client)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		addr:    addr,
		cl:      cl,
		cfg:     cfg,
		lru:     NewLRU(cfg.MaxEntries, cfg.MaxBytes, cfg.Shards),
		marks:   make(map[uint32]uint64),
		seqSeen: make(map[uint32]uint64),
		closeC:  make(chan struct{}),
	}
	if cfg.Metrics != nil {
		c.met = newMetrics(cfg.Metrics)
	}
	c.wg.Add(1)
	go c.watch()
	return c, nil
}

// Client exposes the underlying data client for operations the cache
// does not mediate (Scan, Stats, Checkpoint, batches).
func (c *Cache) Client() *kvnet.Client { return c.cl }

// Close stops the invalidation stream and closes the data client.
func (c *Cache) Close() error {
	c.closeOnce.Do(func() {
		close(c.closeC)
		c.subMu.Lock()
		if c.sub != nil {
			_ = c.sub.Close()
		}
		c.subMu.Unlock()
	})
	c.wg.Wait()
	return c.cl.Close()
}

func (c *Cache) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Get returns key's value, serving from the local cache when armed and
// warm. A miss fetches through the client — with the recorded
// watermarks when any exist, so a lagging replica answers
// kvnet.ErrLagging instead of stale data — and fills the cache under a
// generation guard. The returned slice must not be modified when it
// was served from cache.
func (c *Cache) Get(key []byte) ([]byte, error) {
	if !c.armed.Load() {
		c.bypass.Add(1)
		c.met.bypassed()
		return c.fetch(key)
	}
	if v, ok := c.lru.Get(key); ok {
		c.hits.Add(1)
		c.met.hit()
		return v, nil
	}
	tok := c.lru.Begin(key)
	v, err := c.fetch(key)
	c.misses.Add(1)
	c.met.miss()
	if err != nil {
		return nil, err
	}
	if !c.lru.Commit(tok, key, v) {
		c.fillRaces.Add(1)
		c.met.fillRace()
	}
	c.met.size(c.lru.Len(), c.lru.Bytes())
	return v, nil
}

// fetch reads through the client, watermarked when this client has
// produced (or adopted) any write watermarks.
func (c *Cache) fetch(key []byte) ([]byte, error) {
	marks := c.watermarks()
	if len(marks) > 0 {
		return c.cl.GetAt(key, marks)
	}
	return c.cl.Get(key)
}

// Put writes through the client and synchronously invalidates the
// local entry — read-your-writes holds even before the server's own
// invalidation frame arrives. The entry is invalidated on error too:
// a failed write may still have been applied server-side.
func (c *Cache) Put(key, value []byte) error {
	wm, err := c.cl.PutW(key, value)
	c.selfInvalidate(key, wm)
	return err
}

// Delete removes key through the client, invalidating like Put.
func (c *Cache) Delete(key []byte) error {
	wm, err := c.cl.DeleteW(key)
	c.selfInvalidate(key, wm)
	return err
}

// CompareAndSwap writes key only if it is still at version expect,
// invalidating the local entry like Put. The entry is dropped even on
// kvnet.ErrCASMismatch: the miss forces a fresh read, which is exactly
// what a CAS retry loop needs next.
func (c *Cache) CompareAndSwap(key, value []byte, expect uint64) error {
	wm, err := c.cl.CompareAndSwapW(key, value, expect)
	c.selfInvalidate(key, wm)
	return err
}

// PutTTL stores a pair that expires ttl from now, invalidating like
// Put. The cached entry carries no expiry of its own — the server
// answers not-found once the key expires, and that miss result is what
// later Gets observe.
func (c *Cache) PutTTL(key, value []byte, ttl time.Duration) error {
	wm, err := c.cl.PutTTLW(key, value, ttl)
	c.selfInvalidate(key, wm)
	return err
}

// TxnCommit commits an optimistic multi-key transaction through the
// client and invalidates the local entry for every key the transaction
// wrote, adopting each returned watermark — read-your-writes holds for
// the whole write set, exactly as it does for a single Put.
func (c *Cache) TxnCommit(ops []aria.TxnOp) error {
	wms, err := c.cl.TxnCommitW(ops)
	for i := range ops {
		if !ops[i].ReadOnly {
			c.lru.InvalidateKey(ops[i].Key)
		}
	}
	c.met.size(c.lru.Len(), c.lru.Bytes())
	for _, wm := range wms {
		if wm != (kvnet.Watermark{}) {
			c.UseWatermark(wm)
		}
	}
	return err
}

// selfInvalidate drops the local entry for a key this client just
// wrote (bumping the shard generation, so a fill racing the write dies
// too) and records the write's watermark for future misses.
func (c *Cache) selfInvalidate(key []byte, wm kvnet.Watermark) {
	c.lru.InvalidateKey(key)
	c.met.size(c.lru.Len(), c.lru.Bytes())
	if wm != (kvnet.Watermark{}) {
		c.UseWatermark(wm)
	}
}

// UseWatermark adopts a write watermark produced elsewhere (e.g. by a
// writer client when this cache fronts a replica): later misses read
// with it, so a node that has not applied the write answers
// kvnet.ErrLagging instead of stale data.
func (c *Cache) UseWatermark(wm kvnet.Watermark) {
	c.marksMu.Lock()
	if wm.Seq > c.marks[wm.Shard] {
		c.marks[wm.Shard] = wm.Seq
	}
	c.marksMu.Unlock()
}

// watermarks snapshots the recorded write watermarks (nil when none).
func (c *Cache) watermarks() []kvnet.Watermark {
	c.marksMu.Lock()
	defer c.marksMu.Unlock()
	if len(c.marks) == 0 {
		return nil
	}
	out := make([]kvnet.Watermark, 0, len(c.marks))
	for shard, seq := range c.marks {
		out = append(out, kvnet.Watermark{Shard: shard, Seq: seq})
	}
	return out
}

// SeqSeen returns the highest invalidation sequence applied for one
// WAL shard — the version floor: no cached value older than it can be
// served.
func (c *Cache) SeqSeen(shard uint32) uint64 {
	c.seqMu.Lock()
	defer c.seqMu.Unlock()
	return c.seqSeen[shard]
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Bypass:        c.bypass.Load(),
		Invalidations: c.invals.Load(),
		FillRaces:     c.fillRaces.Load(),
		ColdDrops:     c.coldDrops.Load(),
		Redials:       c.redials.Load(),
		Drains:        c.drains.Load(),
		Entries:       c.lru.Len(),
		Bytes:         c.lru.Bytes(),
		Armed:         c.armed.Load(),
	}
}

// setInvalHook installs a per-entry callback (tests observe acked
// invalidations through it).
func (c *Cache) setInvalHook(fn func(kvnet.InvalEntry)) {
	c.hookMu.Lock()
	c.onInval = fn
	c.hookMu.Unlock()
}

func (c *Cache) invalHook() func(kvnet.InvalEntry) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	return c.onInval
}

// watch owns the invalidation stream for the cache's lifetime: dial,
// consume until loss, drop cold, back off, redial. The cache is armed
// only between a stream's hello frame and its first sign of trouble.
func (c *Cache) watch() {
	defer c.wg.Done()
	backoff := c.cfg.RedialBackoff
	for {
		select {
		case <-c.closeC:
			return
		default:
		}
		dialTimeout := c.cfg.Client.DialTimeout
		if dialTimeout == 0 {
			dialTimeout = 5 * time.Second
		}
		sub, err := kvnet.DialInvalSub(c.addr, dialTimeout)
		if err == nil {
			c.subMu.Lock()
			c.sub = sub
			c.subMu.Unlock()
			c.redials.Add(1)
			c.met.redialed()
			err = c.consume(sub)
			c.subMu.Lock()
			c.sub = nil
			c.subMu.Unlock()
			_ = sub.Close()
			if errors.Is(err, kvnet.ErrDraining) {
				c.drains.Add(1)
				c.met.drained()
				c.logf("ccache: server draining; cache cold until redial")
			} else {
				c.logf("ccache: invalidation stream lost: %v", err)
			}
			backoff = c.cfg.RedialBackoff
		}
		select {
		case <-c.closeC:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxRedialBackoff {
			backoff = maxRedialBackoff
		}
	}
}

// consume arms the cache on the stream's hello frame and applies
// entries until the stream errors, times out past the heartbeat
// window, or drains. Disarm-then-drop runs on every exit path: the
// cache is never warm without a live stream.
func (c *Cache) consume(sub *kvnet.InvalSub) error {
	// Hello: the server sends its first heartbeat only after the hub
	// registration, so arming here guarantees every later commit is
	// either pushed to this stream or happened before — in which case
	// any fill issued from now on observes it.
	ev, err := sub.Next(c.cfg.HeartbeatTimeout)
	if err != nil {
		return err
	}
	c.lru.DropAll()
	c.armed.Store(true)
	c.met.setArmed(true)
	defer func() {
		c.armed.Store(false)
		c.lru.DropAll()
		c.coldDrops.Add(1)
		c.met.droppedCold()
		c.met.setArmed(false)
		c.met.size(0, 0)
	}()
	for {
		c.apply(ev)
		ev, err = sub.Next(c.cfg.HeartbeatTimeout)
		if err != nil {
			return err
		}
	}
}

// apply folds one stream event into the cache.
func (c *Cache) apply(ev kvnet.InvalEvent) {
	if len(ev.Entries) == 0 {
		return // heartbeat
	}
	hook := c.invalHook()
	for _, e := range ev.Entries {
		c.lru.Invalidate(e.Hash)
		c.invals.Add(1)
		c.seqMu.Lock()
		if e.Seq > c.seqSeen[e.Shard] {
			c.seqSeen[e.Shard] = e.Seq
		}
		c.seqMu.Unlock()
		if hook != nil {
			hook(e)
		}
	}
	c.met.invalidated(len(ev.Entries))
	c.met.size(c.lru.Len(), c.lru.Bytes())
}
