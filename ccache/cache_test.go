package ccache

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/kvnet/chaos"
	"github.com/ariakv/aria/repl"
)

// ---- helpers -------------------------------------------------------------

func openTestStore(t *testing.T) aria.Store {
	t.Helper()
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// startServer runs a kvnet server over a fresh in-memory store with
// invalidation push enabled and fast heartbeats, returning its address.
func startServer(t *testing.T, cfg kvnet.ServerConfig) (*kvnet.Server, string) {
	t.Helper()
	if cfg.InvalHeartbeat == 0 {
		cfg.InvalHeartbeat = 20 * time.Millisecond
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 200 * time.Millisecond
	}
	srv := kvnet.NewServerConfig(openTestStore(t), cfg)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// fastConfig keeps the suite quick: tight heartbeat window and redials,
// no client retries (failures surface immediately). The heartbeat window
// must stay well above the 20ms server interval: under the race detector
// a loaded scheduler can stall delivery for hundreds of milliseconds, and
// a false timeout drops the cache cold mid-test.
func fastConfig() Config {
	return Config{
		Client:           kvnet.ClientConfig{Retry: kvnet.NoRetry(), DialTimeout: 2 * time.Second},
		HeartbeatTimeout: time.Second,
		RedialBackoff:    10 * time.Millisecond,
	}
}

func openCache(t *testing.T, addr string, cfg Config) *Cache {
	t.Helper()
	c, err := Open(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitArmed(t *testing.T, c *Cache) {
	t.Helper()
	waitFor(t, 3*time.Second, "cache to arm", func() bool { return c.Stats().Armed })
}

// ---- tests ---------------------------------------------------------------

// TestCacheServesHits: the tentpole happy path. Once armed, a repeated
// read is served locally, and a remote write pushes the entry out so
// the next read refetches the new value.
func TestCacheServesHits(t *testing.T) {
	_, addr := startServer(t, kvnet.ServerConfig{InvalPush: true})
	c := openCache(t, addr, fastConfig())
	waitArmed(t, c)

	if err := c.Put([]byte("hot"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// The cache's own Put comes back as a pushed invalidation. Let it
	// land first: a fill racing that push is (correctly) discarded by
	// the generation guard, which would cost the loop a second miss.
	waitFor(t, 3*time.Second, "self-invalidation to be applied", func() bool {
		return c.Stats().Invalidations >= 1
	})
	// First read misses and fills; the next ones hit.
	for i := 0; i < 3; i++ {
		v, err := c.Get([]byte("hot"))
		if err != nil || string(v) != "v1" {
			t.Fatalf("read %d: %q, %v", i, v, err)
		}
	}
	st := c.Stats()
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("stats after warm reads: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("nothing cached: %+v", st)
	}

	// Another client writes: the server's push must invalidate our copy
	// and the cache converge on the new value (bounded by push latency).
	other, err := kvnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Put([]byte("hot"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "remote write to invalidate the cached copy", func() bool {
		v, err := c.Get([]byte("hot"))
		return err == nil && string(v) == "v2"
	})
	if got := c.Stats(); got.Invalidations == 0 {
		t.Fatalf("no invalidations applied: %+v", got)
	}
}

// TestCacheReadYourWrites: the first leg of the coherence contract,
// under concurrency and the race detector. Writers on disjoint keys
// share one cache; every read after a goroutine's own write must
// return exactly that write, even while other goroutines' traffic and
// the server's invalidation stream churn the same LRU shards.
func TestCacheReadYourWrites(t *testing.T) {
	_, addr := startServer(t, kvnet.ServerConfig{InvalPush: true})
	c := openCache(t, addr, Config{
		Client:           kvnet.ClientConfig{Retry: kvnet.NoRetry(), DialTimeout: 2 * time.Second},
		HeartbeatTimeout: 250 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		// Few shards on purpose: cross-key invalidations then share
		// fill-guard generations, maximizing fill races.
		Shards: 2,
	})
	waitArmed(t, c)

	const writers, rounds = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("w%d", w))
			for i := 0; i < rounds; i++ {
				want := fmt.Sprintf("v%d-%d", w, i)
				if err := c.Put(key, []byte(want)); err != nil {
					errc <- fmt.Errorf("writer %d put %d: %w", w, i, err)
					return
				}
				// Both the immediate read (forced miss via the
				// synchronous self-invalidation) and a follow-up (may
				// hit) must observe the write.
				for r := 0; r < 2; r++ {
					got, err := c.Get(key)
					if err != nil {
						errc <- fmt.Errorf("writer %d read %d.%d: %w", w, i, r, err)
						return
					}
					if string(got) != want {
						errc <- fmt.Errorf("writer %d read %d.%d: got %q, want %q (read-your-writes broken)", w, i, r, got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCacheColdOnRedial: the second leg of the contract. Severing the
// connection must drop the cache cold (no hit can outlive the stream
// that kept it honest); after the heal it re-arms and refetches the
// value written while it was dark — never the pre-partition bytes.
func TestCacheColdOnRedial(t *testing.T) {
	_, addr := startServer(t, kvnet.ServerConfig{InvalPush: true})
	proxy, err := chaos.New(addr, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := openCache(t, proxy.Addr(), fastConfig())
	waitArmed(t, c)
	if err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if v, err := c.Get([]byte("k")); err != nil || string(v) != "v1" {
			t.Fatalf("warm read: %q, %v", v, err)
		}
	}

	proxy.Partition()
	waitFor(t, 3*time.Second, "partition to drop the cache cold", func() bool {
		st := c.Stats()
		return !st.Armed && st.Entries == 0 && st.ColdDrops >= 1
	})

	// While the cache is dark, a direct client (bypassing the proxy)
	// moves the key. The cache can never learn of this write through a
	// dead stream — only the cold drop protects the next read.
	direct, err := kvnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if err := direct.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}

	proxy.Heal()
	waitArmed(t, c)
	// The data client's pooled connection died with the partition; with
	// NoRetry the first read may surface that. Retry transient errors —
	// but any read that *succeeds* must return v2: serving v1 here would
	// be a stale serve across the redial.
	waitFor(t, 3*time.Second, "post-heal read", func() bool {
		v, err := c.Get([]byte("k"))
		if err != nil {
			return false
		}
		if string(v) != "v2" {
			t.Fatalf("post-heal read %q; stale serve across redial", v)
		}
		return true
	})
	if st := c.Stats(); st.Redials < 2 {
		t.Fatalf("expected a re-established stream, got %+v", st)
	}
}

// TestCacheDrainTyped pins the satellite fix end to end: a graceful
// server drain reaches the cache as the typed ErrDraining goodbye
// (counted in Drains), not an anonymous connection reset, and the
// cache disarms.
func TestCacheDrainTyped(t *testing.T) {
	srv, addr := startServer(t, kvnet.ServerConfig{InvalPush: true})
	c := openCache(t, addr, fastConfig())
	waitArmed(t, c)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "typed drain goodbye", func() bool {
		st := c.Stats()
		return st.Drains >= 1 && !st.Armed
	})
}

// TestCacheNeverArmsWithoutPush: against a server without InvalPush
// the cache stays cold forever and reads pass through — correct, just
// not accelerated.
func TestCacheNeverArmsWithoutPush(t *testing.T) {
	_, addr := startServer(t, kvnet.ServerConfig{})
	c := openCache(t, addr, fastConfig())
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("pass-through read: %q, %v", v, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Stats()
	if st.Armed || st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("cache armed against a push-less server: %+v", st)
	}
	if st.Bypass == 0 {
		t.Fatalf("reads not counted as bypass: %+v", st)
	}
}

// ---- replica interaction -------------------------------------------------

func replOpts(dir string) aria.Options {
	return aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		Shards:       2,
		DataDir:      dir,
		Fsync:        aria.FsyncNever,
	}
}

func fastReplCfg() repl.Config {
	return repl.Config{
		AckEvery:      1,
		RedialBackoff: 20 * time.Millisecond,
		PollInterval:  5 * time.Millisecond,
		DialTimeout:   2 * time.Second,
		StreamTimeout: 2 * time.Second,
		WaitTimeout:   5 * time.Second,
	}
}

func serveReplNode(t *testing.T, n *repl.Node) (*kvnet.Server, string) {
	t.Helper()
	srv := kvnet.NewServerConfig(n.Store(), kvnet.ServerConfig{
		Repl:           n,
		InvalPush:      true, // enabled on purpose: replicas must still refuse
		InvalHeartbeat: 20 * time.Millisecond,
		DrainTimeout:   250 * time.Millisecond,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// TestCacheFrontsReplicaLagging: the third leg of the contract. A
// cache in front of a replica never arms (the replica refuses the
// invalidation stream — its applier bypasses the publish hook), so
// nothing is ever cached; with an adopted write watermark, reads
// against a lagging replica surface kvnet.ErrLagging instead of stale
// data, and catch up to the fresh value after the heal.
func TestCacheFrontsReplicaLagging(t *testing.T) {
	primary, err := repl.OpenPrimary(replOpts(t.TempDir()), fastReplCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	_, pAddr := serveReplNode(t, primary)

	// The replica subscribes through a chaos proxy so the test can make
	// it lag on demand.
	proxy, err := chaos.New(pAddr, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	replica, err := repl.OpenReplica(replOpts(t.TempDir()), proxy.Addr(), fastReplCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	_, rAddr := serveReplNode(t, replica)

	pc, err := kvnet.Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	// Baseline write, applied by the replica while the link is healthy.
	wm0, err := pc.PutW([]byte("base"), []byte("b0"))
	if err != nil {
		t.Fatal(err)
	}
	c := openCache(t, rAddr, fastConfig())
	c.UseWatermark(wm0)
	waitFor(t, 5*time.Second, "replica to apply the baseline", func() bool {
		v, err := c.Get([]byte("base"))
		return err == nil && string(v) == "b0"
	})

	// Partition the replication stream and write on the primary.
	proxy.Partition()
	wm, err := pc.PutW([]byte("fresh"), []byte("f1"))
	if err != nil {
		t.Fatal(err)
	}
	c.UseWatermark(wm)
	if _, err := c.Get([]byte("fresh")); !errors.Is(err, kvnet.ErrLagging) {
		t.Fatalf("read on lagging replica = %v, want kvnet.ErrLagging", err)
	}

	proxy.Heal()
	waitFor(t, 5*time.Second, "replica to catch up past the watermark", func() bool {
		v, err := c.Get([]byte("fresh"))
		return err == nil && string(v) == "f1"
	})

	st := c.Stats()
	if st.Armed || st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("cache warmed in front of a replica: %+v", st)
	}
	if st.Bypass == 0 {
		t.Fatalf("replica reads not passed through: %+v", st)
	}
}
