// Package ccache is a coherent client-side cache for kvnet: a bounded,
// sharded LRU that serves hot keys with zero network hops and zero
// enclave edge crossings, kept fresh by the server's invalidation
// stream (kvnet opInvalSub). The paper's whole subject is skew — at
// Zipf-0.99 the top ~1% of keys absorb most reads — so a small local
// cache in front of the wire multiplies client-observed read
// throughput fleet-wide.
//
// Coherence contract:
//
//   - Read-your-writes, always: a write through the cache invalidates
//     the local entry synchronously and records the returned (shard,
//     seq) watermark, so later misses use watermarked reads.
//   - No read is ever served from cache at a version older than the
//     highest invalidation seq received: fills are guarded by
//     per-shard generations (an invalidation racing a fetch kills the
//     fill), and on stream loss, heartbeat silence, or redial the
//     cache drops to cold and only re-arms on a fresh stream.
//
// Non-goals: negative caching (a miss for an absent key always asks
// the server), caching in front of replicas (their applier bypasses
// the primary's publish hook, so the cache stays deliberately cold and
// reads pass through, watermarks intact), and cross-client freshness
// stronger than the server's push latency.
package ccache

import (
	"sync"
	"sync/atomic"

	"github.com/ariakv/aria/kvnet"
)

// Default LRU geometry.
const (
	defaultMaxEntries = 1 << 16
	defaultMaxBytes   = 64 << 20
	defaultShards     = 256

	// entryOverheadBytes approximates per-entry bookkeeping for the
	// byte bound (pointers, map slot, slice headers).
	entryOverheadBytes = 64
)

// entry is one cached pair on a shard's intrusive LRU list.
type entry struct {
	hash       uint64
	key, val   []byte
	prev, next *entry
}

// lruShard is one lock domain: a hash-bucket index plus an LRU list
// with a sentinel head (head.next is most recent). gen is the shard's
// invalidation generation — bumped by every invalidation and cold
// drop, it kills any fill that began before the bump (see FillToken).
type lruShard struct {
	mu      sync.Mutex
	gen     uint64
	buckets map[uint64][]*entry
	head    entry // sentinel; head.next MRU, head.prev LRU
	entries int
	bytes   int64
}

func (s *lruShard) init() {
	s.buckets = make(map[uint64][]*entry)
	s.head.next = &s.head
	s.head.prev = &s.head
}

func (s *lruShard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *lruShard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
}

// LRU is the cache's data structure, exported on its own so the bench
// harness can drive the exact production eviction and fill-guard logic
// against an in-process store under the simulated clock. All methods
// are safe for concurrent use.
type LRU struct {
	shards     []lruShard
	mask       uint64
	maxEntries int   // per shard
	maxBytes   int64 // per shard; 0 = unbounded

	totalEntries atomic.Int64
	totalBytes   atomic.Int64
}

// NewLRU builds a sharded LRU bounded by maxEntries entries and
// maxBytes payload bytes (0 selects the defaults; maxBytes < 0 means
// unbounded bytes). shards is rounded up to a power of two (0 selects
// the default). Bounds are enforced per shard, so the worst-case
// overshoot is one shard's share.
func NewLRU(maxEntries int, maxBytes int64, shards int) *LRU {
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	if maxBytes == 0 {
		maxBytes = defaultMaxBytes
	}
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > maxEntries {
		// Never shard wider than the entry budget: every shard must be
		// allowed at least one entry.
		for n > 1 && n > maxEntries {
			n >>= 1
		}
	}
	l := &LRU{
		shards:     make([]lruShard, n),
		mask:       uint64(n - 1),
		maxEntries: (maxEntries + n - 1) / n,
	}
	if maxBytes > 0 {
		l.maxBytes = (maxBytes + int64(n) - 1) / int64(n)
	}
	for i := range l.shards {
		l.shards[i].init()
	}
	return l
}

func (l *LRU) shardFor(hash uint64) *lruShard {
	return &l.shards[hash&l.mask]
}

// find returns the bucket entry matching key exactly, or nil.
func find(bucket []*entry, key []byte) *entry {
	for _, e := range bucket {
		if string(e.key) == string(key) { // compiler-optimized, no alloc
			return e
		}
	}
	return nil
}

// Get returns the cached value for key and promotes it to most
// recently used. The returned slice is the cache's copy — callers must
// not modify it.
func (l *LRU) Get(key []byte) ([]byte, bool) {
	hash := kvnet.InvalHash(key)
	s := l.shardFor(hash)
	s.mu.Lock()
	e := find(s.buckets[hash], key)
	if e == nil {
		s.mu.Unlock()
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	v := e.val
	s.mu.Unlock()
	return v, true
}

// FillToken guards one fetch-then-insert against invalidations racing
// the fetch: Begin snapshots the key's shard generation before the
// network read, and Commit refuses the insert if any invalidation (or
// cold drop) touched the shard in between — the fetched bytes may
// predate a write whose invalidation has already been applied.
type FillToken struct {
	shard *lruShard
	gen   uint64
	hash  uint64
}

// Begin opens a guarded fill for key. Call it before issuing the
// network fetch that will supply the value.
func (l *LRU) Begin(key []byte) FillToken {
	hash := kvnet.InvalHash(key)
	s := l.shardFor(hash)
	s.mu.Lock()
	g := s.gen
	s.mu.Unlock()
	return FillToken{shard: s, gen: g, hash: hash}
}

// Commit inserts the fetched value under the token's guard, copying
// key and value. It reports false — and caches nothing — if the shard
// generation moved since Begin.
func (l *LRU) Commit(tok FillToken, key, val []byte) bool {
	s := tok.shard
	if s == nil {
		return false
	}
	s.mu.Lock()
	if s.gen != tok.gen {
		s.mu.Unlock()
		return false
	}
	sz := int64(len(key)+len(val)) + entryOverheadBytes
	if e := find(s.buckets[tok.hash], key); e != nil {
		// Same key already cached (a concurrent fill won): refresh it.
		s.bytes += int64(len(val)) - int64(len(e.val))
		l.totalBytes.Add(int64(len(val)) - int64(len(e.val)))
		e.val = append([]byte(nil), val...)
		s.unlink(e)
		s.pushFront(e)
		for l.maxBytes > 0 && s.bytes > l.maxBytes && s.entries > 1 {
			l.evictLocked(s, s.head.prev)
		}
		s.mu.Unlock()
		return true
	}
	e := &entry{
		hash: tok.hash,
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
	}
	s.buckets[tok.hash] = append(s.buckets[tok.hash], e)
	s.pushFront(e)
	s.entries++
	s.bytes += sz
	l.totalEntries.Add(1)
	l.totalBytes.Add(sz)
	for s.entries > l.maxEntries || (l.maxBytes > 0 && s.bytes > l.maxBytes && s.entries > 1) {
		l.evictLocked(s, s.head.prev)
	}
	s.mu.Unlock()
	return true
}

// evictLocked removes e from its shard (held locked by the caller).
func (l *LRU) evictLocked(s *lruShard, e *entry) {
	s.unlink(e)
	bucket := s.buckets[e.hash]
	for i, be := range bucket {
		if be == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.buckets, e.hash)
	} else {
		s.buckets[e.hash] = bucket
	}
	sz := int64(len(e.key)+len(e.val)) + entryOverheadBytes
	s.entries--
	s.bytes -= sz
	l.totalEntries.Add(-1)
	l.totalBytes.Add(-sz)
}

// Invalidate drops every entry whose key hashes to hash and bumps the
// shard generation (killing in-flight fills on the shard), returning
// the number of entries removed. Invalidation works on hashes, not
// keys, so a collision costs a spurious eviction — never a stale
// serve.
func (l *LRU) Invalidate(hash uint64) int {
	s := l.shardFor(hash)
	s.mu.Lock()
	s.gen++
	bucket := s.buckets[hash]
	n := len(bucket)
	for _, e := range bucket {
		s.unlink(e)
		sz := int64(len(e.key)+len(e.val)) + entryOverheadBytes
		s.entries--
		s.bytes -= sz
		l.totalEntries.Add(-1)
		l.totalBytes.Add(-sz)
	}
	delete(s.buckets, hash)
	s.mu.Unlock()
	return n
}

// InvalidateKey invalidates one key (the self-write path).
func (l *LRU) InvalidateKey(key []byte) int {
	return l.Invalidate(kvnet.InvalHash(key))
}

// DropAll empties the cache and bumps every shard generation, so
// every in-flight fill dies with the drop. Used when the invalidation
// stream is (re)established or lost.
func (l *LRU) DropAll() {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.gen++
		if s.entries > 0 {
			l.totalEntries.Add(-int64(s.entries))
			l.totalBytes.Add(-s.bytes)
		}
		s.entries = 0
		s.bytes = 0
		s.buckets = make(map[uint64][]*entry)
		s.head.next = &s.head
		s.head.prev = &s.head
		s.mu.Unlock()
	}
}

// Len returns the cached entry count.
func (l *LRU) Len() int { return int(l.totalEntries.Load()) }

// Bytes returns the cache's approximate payload footprint, per-entry
// overhead included.
func (l *LRU) Bytes() int64 { return l.totalBytes.Load() }
