package ccache

import (
	"fmt"
	"testing"

	"github.com/ariakv/aria/kvnet"
)

// fill inserts key=val through the production Begin/Commit path.
func fill(t *testing.T, l *LRU, key, val string) {
	t.Helper()
	tok := l.Begin([]byte(key))
	if !l.Commit(tok, []byte(key), []byte(val)) {
		t.Fatalf("clean fill of %q rejected", key)
	}
}

func TestLRUFillAndGet(t *testing.T) {
	l := NewLRU(16, -1, 1)
	fill(t, l, "k1", "v1")
	if v, ok := l.Get([]byte("k1")); !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}
	if _, ok := l.Get([]byte("absent")); ok {
		t.Fatal("Get(absent) hit")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestLRUEvictionOrder pins the replacement policy: a Get promotes, so
// the least recently used entry goes first when the bound trips.
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(4, -1, 1)
	for i := 0; i < 4; i++ {
		fill(t, l, fmt.Sprintf("k%d", i), "v")
	}
	// Promote k0: k1 is now the coldest.
	if _, ok := l.Get([]byte("k0")); !ok {
		t.Fatal("k0 missing before eviction")
	}
	fill(t, l, "k4", "v")
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if _, ok := l.Get([]byte("k1")); ok {
		t.Fatal("k1 survived; LRU order broken")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := l.Get([]byte(k)); !ok {
			t.Fatalf("%s evicted; LRU order broken", k)
		}
	}
}

// TestLRUByteBound: the byte budget evicts from the tail until the
// footprint fits, and the accounting survives refreshes.
func TestLRUByteBound(t *testing.T) {
	// Room for ~3 entries of 100B payload + overhead.
	l := NewLRU(1<<20, 3*(100+entryOverheadBytes)+10, 1)
	big := make([]byte, 100)
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		tok := l.Begin(key)
		l.Commit(tok, key, big)
	}
	if l.Len() > 3 {
		t.Fatalf("Len = %d, want <= 3", l.Len())
	}
	if max := int64(3*(100+entryOverheadBytes) + 10); l.Bytes() > max {
		t.Fatalf("Bytes = %d, want <= %d", l.Bytes(), max)
	}
	// Refreshing one key with a much larger value must re-run the byte
	// eviction, not just swap the slice.
	key := []byte("key-7")
	tok := l.Begin(key)
	if !l.Commit(tok, key, make([]byte, 250)) {
		t.Fatal("refresh rejected")
	}
	if max := int64(3*(100+entryOverheadBytes) + 10 + 250); l.Bytes() > max {
		t.Fatalf("Bytes after refresh = %d, over budget", l.Bytes())
	}
}

// TestLRUFillRaceGuard pins the coherence-critical property: any
// invalidation (even for a key that is not cached, even a full drop)
// touching the shard between Begin and Commit kills the fill.
func TestLRUFillRaceGuard(t *testing.T) {
	l := NewLRU(16, -1, 1)

	tok := l.Begin([]byte("k"))
	l.Invalidate(kvnet.InvalHash([]byte("k")))
	if l.Commit(tok, []byte("k"), []byte("stale")) {
		t.Fatal("commit survived an invalidation of the same key")
	}
	if _, ok := l.Get([]byte("k")); ok {
		t.Fatal("stale fill was cached")
	}

	// An invalidation for a *different* (absent) key on the same shard
	// must still kill the fill: with one shard the guard is coarse by
	// design — never stale, occasionally over-cautious.
	tok = l.Begin([]byte("k"))
	l.Invalidate(kvnet.InvalHash([]byte("unrelated-and-absent")))
	if l.Commit(tok, []byte("k"), []byte("stale")) {
		t.Fatal("commit survived a same-shard invalidation")
	}

	// DropAll bumps every shard.
	tok = l.Begin([]byte("k"))
	l.DropAll()
	if l.Commit(tok, []byte("k"), []byte("stale")) {
		t.Fatal("commit survived DropAll")
	}

	// And an undisturbed fill goes through.
	tok = l.Begin([]byte("k"))
	if !l.Commit(tok, []byte("k"), []byte("fresh")) {
		t.Fatal("clean fill rejected")
	}
	if v, _ := l.Get([]byte("k")); string(v) != "fresh" {
		t.Fatalf("got %q", v)
	}
}

func TestLRUInvalidateCounts(t *testing.T) {
	l := NewLRU(16, -1, 4)
	fill(t, l, "a", "1")
	fill(t, l, "b", "2")
	if n := l.InvalidateKey([]byte("a")); n != 1 {
		t.Fatalf("InvalidateKey(a) = %d, want 1", n)
	}
	if n := l.InvalidateKey([]byte("a")); n != 0 {
		t.Fatalf("second InvalidateKey(a) = %d, want 0", n)
	}
	if _, ok := l.Get([]byte("b")); !ok {
		t.Fatal("b collateral-evicted by a's invalidation")
	}
	l.DropAll()
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("after DropAll: Len=%d Bytes=%d", l.Len(), l.Bytes())
	}
}

// TestLRURefreshKeepsSingleEntry: two racing fills of the same key end
// as one entry with the later value, bytes accounted once.
func TestLRURefreshKeepsSingleEntry(t *testing.T) {
	l := NewLRU(16, -1, 1)
	tok1 := l.Begin([]byte("k"))
	tok2 := l.Begin([]byte("k"))
	if !l.Commit(tok1, []byte("k"), []byte("first")) {
		t.Fatal("first commit rejected")
	}
	if !l.Commit(tok2, []byte("k"), []byte("second-longer")) {
		t.Fatal("second commit rejected (no invalidation happened)")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if v, _ := l.Get([]byte("k")); string(v) != "second-longer" {
		t.Fatalf("got %q", v)
	}
	want := int64(len("k")+len("second-longer")) + entryOverheadBytes
	if l.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", l.Bytes(), want)
	}
}

// TestLRUShardNeverExceedsEntryBudget: rounding shards up to a power
// of two must not grant more total entries than asked for.
func TestLRUShardCapping(t *testing.T) {
	l := NewLRU(2, -1, 256) // 2 entries, absurd shard count
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		tok := l.Begin(key)
		l.Commit(tok, key, []byte("v"))
	}
	if l.Len() > 2 {
		t.Fatalf("Len = %d, want <= 2 (shards wider than budget)", l.Len())
	}
}
