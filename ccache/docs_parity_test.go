package ccache

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/ariakv/aria/obs"
)

// TestDocsMetricsParity keeps the ccache_* rows of the metric
// catalogue in docs/OPERATIONS.md in lockstep with the families this
// package registers, mirroring the kvnet and repl parity tests.
func TestDocsMetricsParity(t *testing.T) {
	reg := obs.NewRegistry()
	newMetrics(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	emitted := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			emitted[strings.Fields(line)[2]] = true
		}
	}
	if len(emitted) == 0 {
		t.Fatal("no metric families emitted")
	}

	doc, err := os.ReadFile(filepath.Join("..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	nameRe := regexp.MustCompile("^\\| `(ccache_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := nameRe.FindStringSubmatch(line); m != nil {
			if documented[m[1]] {
				t.Errorf("docs/OPERATIONS.md lists %s twice", m[1])
			}
			documented[m[1]] = true
		}
	}

	var missing, ghosts []string
	for name := range emitted {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			ghosts = append(ghosts, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(ghosts)
	if len(missing) > 0 {
		t.Errorf("emitted but not documented in docs/OPERATIONS.md: %v", missing)
	}
	if len(ghosts) > 0 {
		t.Errorf("documented in docs/OPERATIONS.md but never emitted: %v", ghosts)
	}
}
