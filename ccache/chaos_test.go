// The ccache chaos suite: a real server, a fault proxy, and a cache
// that gets partitioned, flapped, and blackholed while writers churn.
// The headline gate is zero stale reads past an acked invalidation:
// once the cache has applied the invalidation for a write, no later
// read — hit, miss, or bypass — may return anything older than that
// write. The oracle is exact because apply() invalidates the LRU
// before the test hook observes the entry, so the recorded floor never
// runs ahead of the cache's own state.
package ccache

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/kvnet/chaos"
)

// chaosKeys is the hot set the chaos workload churns.
func chaosKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chaos-key-%03d", i))
	}
	return keys
}

// encVer/decVer carry a write's version number in its value.
func encVer(v uint64) []byte { return []byte(fmt.Sprintf("%016d", v)) }

func decVer(t *testing.T, b []byte) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		t.Fatalf("unparseable version value %q: %v", b, err)
	}
	return v
}

// TestChaosCcacheZeroStaleReads drives concurrent readers through a
// cache whose connections run through a fault proxy — partition, link
// flap, blackhole (heartbeat silence), heal — while a writer (direct,
// unproxied) advances versioned values. Invariant: a read may lag (push
// latency, that is the contract) but may never return a version older
// than an invalidation the cache has already applied.
func TestChaosCcacheZeroStaleReads(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	_, addr := startServer(t, kvnet.ServerConfig{InvalPush: true})
	proxy, err := chaos.New(addr, chaos.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := openCache(t, proxy.Addr(), Config{
		// OpTimeout matters: a blackholed connection swallows responses,
		// and a read blocked on one must fail fast, not sit out the 30s
		// default.
		Client: kvnet.ClientConfig{
			Retry:       kvnet.NoRetry(),
			DialTimeout: 2 * time.Second,
			OpTimeout:   500 * time.Millisecond,
		},
		HeartbeatTimeout: 250 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		Shards:           8, // coarse shards widen the fill-guard blast radius on purpose
	})

	keys := chaosKeys(16)
	keyOf := make(map[uint64]string, len(keys))
	for _, k := range keys {
		h := kvnet.InvalHash(k)
		if prev, dup := keyOf[h]; dup {
			t.Fatalf("test keys collide: %q and %q", prev, k)
		}
		keyOf[h] = string(k)
	}

	// Oracle state. wrote[k] is the highest version whose Put has
	// returned; floor[h] is the stale-read floor — raised to wrote[k]
	// when the cache applies an invalidation for k's hash, at which
	// point the LRU has already dropped the entry and bumped the shard
	// generation, so every later cached value must be >= wrote[k].
	var oracleMu sync.Mutex
	wrote := make(map[string]uint64, len(keys))
	floor := make(map[uint64]uint64, len(keys))
	c.setInvalHook(func(e kvnet.InvalEntry) {
		oracleMu.Lock()
		if k, ok := keyOf[e.Hash]; ok {
			if v := wrote[k]; v > floor[e.Hash] {
				floor[e.Hash] = v
			}
		}
		oracleMu.Unlock()
	})

	// The writer bypasses the proxy: the server's state advances even
	// while the cache is dark, which is exactly what makes a stale
	// post-heal serve possible if the cold-drop logic were broken.
	writer, err := kvnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	for _, k := range keys {
		if err := writer.Put(k, encVer(1)); err != nil {
			t.Fatal(err)
		}
		oracleMu.Lock()
		wrote[string(k)] = 1
		oracleMu.Unlock()
	}
	waitArmed(t, c)

	var (
		stop       atomic.Bool
		violations atomic.Uint64
		goodReads  atomic.Uint64
		wg         sync.WaitGroup
	)
	// Writer loop: round-robin version bumps, full speed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ver := make(map[string]uint64, len(keys))
		for _, k := range keys {
			ver[string(k)] = 1
		}
		for i := 0; !stop.Load(); i++ {
			k := keys[i%len(keys)]
			next := ver[string(k)] + 1
			if err := writer.Put(k, encVer(next)); err != nil {
				continue // server never goes away; be safe anyway
			}
			ver[string(k)] = next
			oracleMu.Lock()
			if next > wrote[string(k)] {
				wrote[string(k)] = next
			}
			oracleMu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Reader loops: snapshot the floor, then read through the cache.
	// Errors are expected while partitioned; successes are checked.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; !stop.Load(); i++ {
				k := keys[i%len(keys)]
				h := kvnet.InvalHash(k)
				oracleMu.Lock()
				min := floor[h]
				oracleMu.Unlock()
				v, err := c.Get(k)
				if err != nil {
					continue
				}
				if got := decVer(t, v); got < min {
					violations.Add(1)
					t.Errorf("stale read: key %q version %d, acked-invalidation floor %d", k, got, min)
				}
				goodReads.Add(1)
			}
		}(r)
	}

	start := time.Now()
	mark := func(what string) { t.Logf("%8.2fs %s", time.Since(start).Seconds(), what) }
	// The chaos schedule. Between injuries, wait for the cache to
	// re-arm so each phase actually exercises a warm cache.
	time.Sleep(200 * time.Millisecond) // healthy warm traffic
	mark("warm done")

	proxy.Partition()
	time.Sleep(150 * time.Millisecond)
	proxy.Heal()
	mark("healed")
	waitArmed(t, c)
	mark("rearmed after partition")
	time.Sleep(100 * time.Millisecond)

	proxy.Flap(3, 30*time.Millisecond, 60*time.Millisecond)
	mark("flapped")
	waitArmed(t, c)
	mark("rearmed after flap")
	time.Sleep(100 * time.Millisecond)

	// Blackhole: connections stay up but nothing flows — only the
	// heartbeat timeout can save the cache from serving forever-stale
	// hits off a silently dead stream.
	proxy.SetBlackhole(true, true)
	waitFor(t, 3*time.Second, "heartbeat silence to drop the cache cold", func() bool {
		return !c.Stats().Armed
	})
	mark("went cold in blackhole")
	proxy.SetBlackhole(false, false)
	waitArmed(t, c)
	mark("rearmed after blackhole")
	time.Sleep(100 * time.Millisecond)

	stop.Store(true)
	mark("stopping")
	wg.Wait()
	mark("workers joined")

	st := c.Stats()
	if violations.Load() != 0 {
		t.Fatalf("%d stale reads past an acked invalidation (stats %+v)", violations.Load(), st)
	}
	if goodReads.Load() == 0 {
		t.Fatal("no successful reads; the chaos schedule starved the workload")
	}
	if st.Hits == 0 {
		t.Errorf("no cache hits; the suite never exercised the warm path: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("no invalidations applied; the oracle never engaged: %+v", st)
	}
	if st.ColdDrops < 2 || st.Redials < 2 {
		t.Errorf("chaos schedule too gentle: %+v", st)
	}
	t.Logf("chaos stats: reads=%d %+v", goodReads.Load(), st)
}
