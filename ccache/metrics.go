package ccache

import "github.com/ariakv/aria/obs"

// Metric family names. The catalogue lives in docs/OPERATIONS.md; the
// parity test keeps the two in sync.
const (
	metricHits      = "ccache_hits_total"
	metricMisses    = "ccache_misses_total"
	metricBypass    = "ccache_bypass_total"
	metricInvals    = "ccache_invalidations_total"
	metricFillRaces = "ccache_fill_races_total"
	metricColdDrops = "ccache_cold_drops_total"
	metricRedials   = "ccache_redials_total"
	metricDrains    = "ccache_drains_total"
	metricEntries   = "ccache_entries"
	metricBytes     = "ccache_bytes"
	metricArmed     = "ccache_armed"
)

// metrics holds the cache's instruments. A nil *metrics is valid and
// turns every method into a no-op, so call sites never branch on
// whether metrics are enabled (same contract as kvnet and repl).
type metrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	bypass    *obs.Counter
	invals    *obs.Counter
	fillRaces *obs.Counter
	coldDrops *obs.Counter
	redials   *obs.Counter
	drains    *obs.Counter
	entries   *obs.Gauge
	bytes     *obs.Gauge
	armed     *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		hits: reg.Counter(metricHits,
			"Reads served from the local cache (zero network hops).", nil),
		misses: reg.Counter(metricMisses,
			"Armed reads that went to the server.", nil),
		bypass: reg.Counter(metricBypass,
			"Reads passed through while the cache was cold (stream down).", nil),
		invals: reg.Counter(metricInvals,
			"Invalidation entries applied from the server's stream.", nil),
		fillRaces: reg.Counter(metricFillRaces,
			"Fills discarded because an invalidation raced the fetch.", nil),
		coldDrops: reg.Counter(metricColdDrops,
			"Times the cache dropped to cold (stream loss, drain, or redial).", nil),
		redials: reg.Counter(metricRedials,
			"Invalidation stream (re)connections established.", nil),
		drains: reg.Counter(metricDrains,
			"Streams ended by the server's typed ErrDraining goodbye.", nil),
		entries: reg.Gauge(metricEntries,
			"Entries currently cached.", nil),
		bytes: reg.Gauge(metricBytes,
			"Approximate cached payload bytes, per-entry overhead included.", nil),
		armed: reg.Gauge(metricArmed,
			"1 while the invalidation stream is live and the cache serves hits.", nil),
	}
}

func (m *metrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *metrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *metrics) bypassed() {
	if m != nil {
		m.bypass.Inc()
	}
}

func (m *metrics) invalidated(n int) {
	if m != nil {
		m.invals.Add(uint64(n))
	}
}

func (m *metrics) fillRace() {
	if m != nil {
		m.fillRaces.Inc()
	}
}

func (m *metrics) droppedCold() {
	if m != nil {
		m.coldDrops.Inc()
	}
}

func (m *metrics) redialed() {
	if m != nil {
		m.redials.Inc()
	}
}

func (m *metrics) drained() {
	if m != nil {
		m.drains.Inc()
	}
}

func (m *metrics) setArmed(v bool) {
	if m == nil {
		return
	}
	if v {
		m.armed.Set(1)
	} else {
		m.armed.Set(0)
	}
}

func (m *metrics) size(entries int, bytes int64) {
	if m == nil {
		return
	}
	m.entries.Set(float64(entries))
	m.bytes.Set(float64(bytes))
}
